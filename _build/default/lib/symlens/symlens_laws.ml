(** QCheck law suites for symmetric lenses: (PutRL) and (PutLR).

    The laws quantify over complements; we sample them by random walks —
    a generated sequence of {!Symlens.step} updates applied from the
    initial complement — so that only {e reachable} complements are
    tested, matching HPW's treatment of lenses up to reachability. *)

let default_count = 300

let gen_steps (gen_a : 'a QCheck.arbitrary) (gen_b : 'b QCheck.arbitrary) :
    ('a, 'b) Symlens.step list QCheck.arbitrary =
  let open QCheck in
  list_of_size (Gen.int_bound 8)
    (oneof
       [
         map (fun a -> Symlens.Push_r a) gen_a;
         map (fun b -> Symlens.Push_l b) gen_b;
       ])

let put_rl ?(count = default_count) ~name (lens : ('a, 'b) Symlens.t)
    ~(gen_a : 'a QCheck.arbitrary) ~(gen_b : 'b QCheck.arbitrary)
    ~(eq_a : 'a Esm_laws.Equality.t) : QCheck.Test.t =
  QCheck.Test.make ~count ~name:(name ^ " (PutRL)")
    (QCheck.pair (gen_steps gen_a gen_b) gen_a)
    (fun (steps, a) -> Symlens.put_rl_at ~eq_a lens steps a)

let put_lr ?(count = default_count) ~name (lens : ('a, 'b) Symlens.t)
    ~(gen_a : 'a QCheck.arbitrary) ~(gen_b : 'b QCheck.arbitrary)
    ~(eq_b : 'b Esm_laws.Equality.t) : QCheck.Test.t =
  QCheck.Test.make ~count ~name:(name ^ " (PutLR)")
    (QCheck.pair (gen_steps gen_a gen_b) gen_b)
    (fun (steps, b) -> Symlens.put_lr_at ~eq_b lens steps b)

(** Both laws. *)
let well_behaved ?count ~name lens ~gen_a ~gen_b ~eq_a ~eq_b :
    QCheck.Test.t list =
  [
    put_rl ?count ~name lens ~gen_a ~gen_b ~eq_a;
    put_lr ?count ~name lens ~gen_a ~gen_b ~eq_b;
  ]

(** QCheck test for observational equivalence of two symmetric lenses:
    agreement on sampled step sequences — the HPW quotient relation. *)
let equivalence ?(count = default_count) ~name (l1 : ('a, 'b) Symlens.t)
    (l2 : ('a, 'b) Symlens.t) ~(gen_a : 'a QCheck.arbitrary)
    ~(gen_b : 'b QCheck.arbitrary) ~(eq_a : 'a Esm_laws.Equality.t)
    ~(eq_b : 'b Esm_laws.Equality.t) : QCheck.Test.t =
  QCheck.Test.make ~count ~name
    (gen_steps gen_a gen_b)
    (Symlens.equivalent_on ~eq_a ~eq_b l1 l2)
