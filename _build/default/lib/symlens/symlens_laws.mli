(** QCheck law suites for symmetric lenses: (PutRL) and (PutLR), sampled
    over complements reached by random walks from the initial one. *)

val default_count : int

val gen_steps :
  'a QCheck.arbitrary ->
  'b QCheck.arbitrary ->
  ('a, 'b) Symlens.step list QCheck.arbitrary
(** Random walks used to sample reachable complements. *)

val put_rl :
  ?count:int ->
  name:string ->
  ('a, 'b) Symlens.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  QCheck.Test.t

val put_lr :
  ?count:int ->
  name:string ->
  ('a, 'b) Symlens.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t

val well_behaved :
  ?count:int ->
  name:string ->
  ('a, 'b) Symlens.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t list
(** Both laws. *)

val equivalence :
  ?count:int ->
  name:string ->
  ('a, 'b) Symlens.t ->
  ('a, 'b) Symlens.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t
(** Observational equivalence on sampled step sequences — the HPW
    quotient relation. *)
