(** Partial (exception-raising) bidirectional transformations — the
    "exceptions" point in the paper's programme of combining effects with
    bidirectionality (§5).

    The monad is the state-and-failure stack
    [M A = S -> (A * S, error) result]: an update may be {e rejected},
    leaving no new state (the whole computation aborts, transaction
    style).  The canonical source of rejection is a validator: a view
    update that violates an invariant of the opposite side (e.g. a
    relational view row that fails the selection predicate) fails instead
    of corrupting the store.

    The set-bx laws hold on valid states in the failure-aware reading —
    both sides of each law produce the same [result], including failures —
    because validators accept anything already readable from a valid
    state: [set_a (get_a s)] revalidates a value the state itself
    produced. *)

type error = string

module Make (X : sig
  type ta
  type tb
  type ts

  val bx : (ta, tb, ts) Concrete.set_bx

  val validate_a : ta -> (unit, error) result
  (** Precondition checked before [set_a]; must accept every value
      [get_a] can produce on a valid state. *)

  val validate_b : tb -> (unit, error) result
  val equal_s : ts -> ts -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ts
       and type 'x t = X.ts -> ('x * X.ts, error) result
       and type 'x result = ('x * X.ts, error) Stdlib.result

  val succeeds : 'x t -> state -> bool
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ts

  include Esm_monad.Extend.Make (struct
    type 'x t = state -> ('x * state, error) result

    let return x s = Ok (x, s)

    let bind m f s =
      match m s with Error e -> Error e | Ok (x, s') -> f x s'
  end)

  type 'x result = ('x * state, error) Stdlib.result

  let run (m : 'x t) (s : state) : 'x result = m s

  let equal_result eq r1 r2 =
    match (r1, r2) with
    | Ok (x1, s1), Ok (x2, s2) -> eq x1 x2 && X.equal_s s1 s2
    | Error e1, Error e2 -> String.equal e1 e2
    | Ok _, Error _ | Error _, Ok _ -> false

  let succeeds m s = Result.is_ok (m s)

  let get_a : a t = fun s -> Ok (X.bx.Concrete.get_a s, s)
  let get_b : b t = fun s -> Ok (X.bx.Concrete.get_b s, s)

  let set_a (a : a) : unit t =
   fun s ->
    match X.validate_a a with
    | Error e -> Error e
    | Ok () -> Ok ((), X.bx.Concrete.set_a a s)

  let set_b (b : b) : unit t =
   fun s ->
    match X.validate_b b with
    | Error e -> Error e
    | Ok () -> Ok ((), X.bx.Concrete.set_b b s)
end
