(** Multi-directional entanglement: three views over shared hidden state.

    The paper's introduction allows bx "on only two information sources,
    or several"; the formal development stops at two.  This module carries
    the construction to three: a {e tri-bx} exposes views [A], [B], [C]
    with a getter/setter pair each, every side a lawful state-monad cell
    over the shared state, and all three entangled.

    The canonical construction chains two concrete bx through a shared
    middle type: given [t1 : A <-> B] over [s1] and [t2 : B <-> C] over
    [s2], the composite state is the {!Compose.aligned} pairs, [B] is
    readable directly, and a set on any side repairs the other two.  The
    laws on all three sides hold on aligned states whenever [t1] and [t2]
    are lawful (tested in [test_multiway.ml]). *)

type ('a, 'b, 'c, 's) t = {
  name : string;
  get_a : 's -> 'a;
  get_b : 's -> 'b;
  get_c : 's -> 'c;
  set_a : 'a -> 's -> 's;
  set_b : 'b -> 's -> 's;
  set_c : 'c -> 's -> 's;
}

(** Chain two binary bx sharing their middle type.  [set_b] pushes the
    middle value outward into both components. *)
let of_chain (t1 : ('a, 'b, 's1) Concrete.set_bx)
    (t2 : ('b, 'c, 's2) Concrete.set_bx) : ('a, 'b, 'c, 's1 * 's2) t =
  {
    name = t1.Concrete.name ^ " >< " ^ t2.Concrete.name;
    get_a = (fun (x1, _) -> t1.Concrete.get_a x1);
    get_b = (fun (x1, _) -> t1.Concrete.get_b x1);
    get_c = (fun (_, x2) -> t2.Concrete.get_b x2);
    set_a =
      (fun a (x1, x2) ->
        let x1' = t1.Concrete.set_a a x1 in
        (x1', t2.Concrete.set_a (t1.Concrete.get_b x1') x2));
    set_b =
      (fun b (x1, x2) ->
        (t1.Concrete.set_b b x1, t2.Concrete.set_a b x2));
    set_c =
      (fun c (x1, x2) ->
        let x2' = t2.Concrete.set_b c x2 in
        (t1.Concrete.set_b (t2.Concrete.get_a x2') x1, x2'));
  }

(** Forget the middle view, recovering the binary composition of
    {!Compose.compose} (observationally). *)
let to_binary (m : ('a, 'b, 'c, 's) t) : ('a, 'c, 's) Concrete.set_bx =
  {
    Concrete.name = m.name;
    get_a = m.get_a;
    get_b = m.get_c;
    set_a = m.set_a;
    set_b = m.set_c;
  }

(** Project out each binary face of the tri-bx. *)
let face_ab (m : ('a, 'b, 'c, 's) t) : ('a, 'b, 's) Concrete.set_bx =
  {
    Concrete.name = m.name ^ ".ab";
    get_a = m.get_a;
    get_b = m.get_b;
    set_a = m.set_a;
    set_b = m.set_b;
  }

let face_bc (m : ('a, 'b, 'c, 's) t) : ('b, 'c, 's) Concrete.set_bx =
  {
    Concrete.name = m.name ^ ".bc";
    get_a = m.get_b;
    get_b = m.get_c;
    set_a = m.set_b;
    set_b = m.set_c;
  }

(** Apply an operation to every view in turn (used by tests to exercise
    entanglement among all three sides). *)
type ('a, 'b, 'c) op = Set_a of 'a | Set_b of 'b | Set_c of 'c

let apply (m : ('a, 'b, 'c, 's) t) (op : ('a, 'b, 'c) op) (s : 's) : 's =
  match op with
  | Set_a a -> m.set_a a s
  | Set_b b -> m.set_b b s
  | Set_c c -> m.set_c c s
