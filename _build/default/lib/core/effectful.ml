(** Section 4 of the paper: a stateful bx whose [set] operations perform
    I/O side effects, and therefore cannot be a symmetric lens (or any of
    the other pure formalisms).

    The paper's monad is [M A = Integer -> IO (A * Integer)]; ours is the
    state transformer over {!Esm_monad.Io_sim}, the pure simulated-IO
    substitute (see DESIGN.md), which makes the effects observable: [run]
    returns the output trace alongside value and state, and the law
    checkers compare traces too.  The set-bx laws (GG), (GS), (SG) hold
    {e including} the trace, because a message is printed only when the
    state actually changes; (SS) fails observationally — two successive
    changing sets print twice — so the instance is not overwriteable.

    The paper notes "we should be able to add similar stateful behaviour
    to any (symmetric) lens or algebraic bx following a similar pattern";
    {!Make} implements exactly that generalisation: it wraps an arbitrary
    concrete set-bx ({!Concrete.set_bx}) with change-announcing prints.
    The paper's literal example — the trivial underlying bx on integers —
    is {!Paper_example}. *)

module Io = Esm_monad.Io_sim

module Make (X : sig
  type ta
  type tb
  type ts

  val bx : (ta, tb, ts) Concrete.set_bx
  val equal_a : ta -> ta -> bool
  val equal_b : tb -> tb -> bool
  val equal_s : ts -> ts -> bool

  val message_a : string
  (** printed when [set_a] actually changes the A view *)

  val message_b : string
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ts
       and type 'x result = ('x * X.ts) * string list

  val trace : 'x t -> state -> string list
  (** Just the output trace of a computation. *)
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ts

  module M =
    Esm_monad.State_t.Make
      (struct
        type t = X.ts
      end)
      (Io)

  include (M : Esm_monad.Monad_intf.S with type 'x t = 'x M.t)

  type 'x result = ('x * state) * string list

  let run (ma : 'x t) (s : state) : 'x result = Io.run (ma s)

  let equal_result eq ((x1, s1), tr1) ((x2, s2), tr2) =
    eq x1 x2 && X.equal_s s1 s2 && Esm_laws.Equality.(list string) tr1 tr2

  let trace ma s = snd (run ma s)

  let get_a : a t = M.gets X.bx.Concrete.get_a
  let get_b : b t = M.gets X.bx.Concrete.get_b

  (* Print the change message only when the view actually changes, then
     update the underlying state through the wrapped bx.  The
     only-on-change guard is what keeps (GS) and (SG) valid at the level
     of traces. *)
  let set_a (a : a) : unit t =
   fun s ->
    let changed = not (X.equal_a (X.bx.Concrete.get_a s) a) in
    Io.bind (Io.when_m changed (Io.print X.message_a)) (fun () ->
        Io.return ((), X.bx.Concrete.set_a a s))

  let set_b (b : b) : unit t =
   fun s ->
    let changed = not (X.equal_b (X.bx.Concrete.get_b s) b) in
    Io.bind (Io.when_m changed (Io.print X.message_b)) (fun () ->
        Io.return ((), X.bx.Concrete.set_b b s))
end

(** The paper's literal Section 4 example: integer state, trivial
    underlying bx (both views are the whole state), messages
    "Changed A" / "Changed B". *)
module Paper_example = Make (struct
  type ta = int
  type tb = int
  type ts = int

  let bx : (int, int, int) Concrete.set_bx =
    {
      Concrete.name = "trivial-int";
      get_a = Fun.id;
      get_b = Fun.id;
      set_a = (fun a _ -> a);
      set_b = (fun b _ -> b);
    }

  let equal_a = Int.equal
  let equal_b = Int.equal
  let equal_s = Int.equal
  let message_a = "Changed A"
  let message_b = "Changed B"
end)
