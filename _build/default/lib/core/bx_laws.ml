(** QCheck law suites for set-bx and put-bx (paper, Sections 3.1–3.2).

    The set-bx laws are, per side, exactly the cell laws of
    {!Esm_laws.Cell_laws}; the functor {!Set_bx} instantiates that checker
    twice over the shared state.  {!Put_bx} implements the put-bx laws
    (GG), (GP), (PG1), (PG2) and (PP) directly.

    Generators of states must produce {e valid} states for the instance —
    e.g. consistent pairs for {!Of_algebraic}, consistent triples for
    {!Of_symmetric}, aligned pairs for {!Compose} — since the paper's
    constructions define the monads over those restricted state spaces. *)

module Set_bx (T : Bx_intf.STATEFUL_SET_BX) = struct
  module A_cell = Esm_laws.Cell_laws.Make (struct
    type 'x t = 'x T.t
    type world = T.state
    type 'x result = 'x T.result
    type value = T.a

    let return = T.return
    let bind = T.bind
    let run = T.run
    let equal_result = T.equal_result
    let get = T.get_a
    let set = T.set_a
  end)

  module B_cell = Esm_laws.Cell_laws.Make (struct
    type 'x t = 'x T.t
    type world = T.state
    type 'x result = 'x T.result
    type value = T.b

    let return = T.return
    let bind = T.bind
    let run = T.run
    let equal_result = T.equal_result
    let get = T.get_b
    let set = T.set_b
  end)

  type config = {
    name : string;
    count : int;
    gen_state : T.state QCheck.arbitrary;
    gen_a : T.a QCheck.arbitrary;
    gen_b : T.b QCheck.arbitrary;
    eq_a : T.a -> T.a -> bool;
    eq_b : T.b -> T.b -> bool;
  }

  let config ?(count = 500) ~name ~gen_state ~gen_a ~gen_b ~eq_a ~eq_b () =
    { name; count; gen_state; gen_a; gen_b; eq_a; eq_b }

  let a_config cfg =
    A_cell.config ~count:cfg.count ~name:(cfg.name ^ ".A")
      ~gen_world:cfg.gen_state ~gen_value:cfg.gen_a ~eq_value:cfg.eq_a ()

  let b_config cfg =
    B_cell.config ~count:cfg.count ~name:(cfg.name ^ ".B")
      ~gen_world:cfg.gen_state ~gen_value:cfg.gen_b ~eq_value:cfg.eq_b ()

  (** (GG), (GS), (SG) on both sides: the set-bx laws. *)
  let well_behaved cfg : QCheck.Test.t list =
    A_cell.well_behaved (a_config cfg) @ B_cell.well_behaved (b_config cfg)

  (** The set-bx laws plus (SS) on both sides. *)
  let overwriteable cfg : QCheck.Test.t list =
    A_cell.overwriteable (a_config cfg) @ B_cell.overwriteable (b_config cfg)

  (** The Section 3.4 commutation law [set_a a >> set_b b = set_b b >>
      set_a a] — {e not} required of a set-bx; holds for {!Pair_bx},
      fails for genuinely entangled instances.  Exposed so tests can
      assert both outcomes. *)
  let sets_commute cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count
      ~name:(cfg.name ^ " (set_a/set_b commute)")
      (QCheck.triple cfg.gen_state cfg.gen_a cfg.gen_b)
      (fun (s, a, b) ->
        let open T.Infix in
        T.equal_result Esm_laws.Equality.unit
          (T.run (T.set_a a >> T.set_b b) s)
          (T.run (T.set_b b >> T.set_a a) s))
end

module Put_bx (U : Bx_intf.STATEFUL_PUT_BX) = struct
  open U.Infix

  type config = {
    name : string;
    count : int;
    gen_state : U.state QCheck.arbitrary;
    gen_a : U.a QCheck.arbitrary;
    gen_b : U.b QCheck.arbitrary;
    eq_a : U.a -> U.a -> bool;
    eq_b : U.b -> U.b -> bool;
  }

  let config ?(count = 500) ~name ~gen_state ~gen_a ~gen_b ~eq_a ~eq_b () =
    { name; count; gen_state; gen_a; gen_b; eq_a; eq_b }

  (* (GG) for a getter, at the universal continuation (see Cell_laws). *)
  let gg_with (type v) ~label ~(eq : v -> v -> bool) (getter : v U.t) cfg :
      QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count
      ~name:(cfg.name ^ " (GG " ^ label ^ ")")
      cfg.gen_state
      (fun s ->
        let lhs = getter >>= fun x -> getter >>= fun y -> U.return (x, y) in
        let rhs = getter >>= fun x -> U.return (x, x) in
        U.equal_result (Esm_laws.Equality.pair eq eq) (U.run lhs s)
          (U.run rhs s))

  let gg_a cfg = gg_with ~label:"get_a" ~eq:cfg.eq_a U.get_a cfg
  let gg_b cfg = gg_with ~label:"get_b" ~eq:cfg.eq_b U.get_b cfg

  (** (GP): [get_a >>= put_ab = get_b] (and mirrored). *)
  let gp_a cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GP a)")
      cfg.gen_state
      (fun s ->
        U.equal_result cfg.eq_b
          (U.run (U.get_a >>= U.put_ab) s)
          (U.run U.get_b s))

  let gp_b cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GP b)")
      cfg.gen_state
      (fun s ->
        U.equal_result cfg.eq_a
          (U.run (U.get_b >>= U.put_ba) s)
          (U.run U.get_a s))

  (** (PG1): [put_ab a >> get_a = put_ab a >> return a] (and mirrored). *)
  let pg1_a cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG1 a)")
      (QCheck.pair cfg.gen_state cfg.gen_a)
      (fun (s, a) ->
        U.equal_result cfg.eq_a
          (U.run (U.put_ab a >> U.get_a) s)
          (U.run (U.put_ab a >> U.return a) s))

  let pg1_b cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG1 b)")
      (QCheck.pair cfg.gen_state cfg.gen_b)
      (fun (s, b) ->
        U.equal_result cfg.eq_b
          (U.run (U.put_ba b >> U.get_b) s)
          (U.run (U.put_ba b >> U.return b) s))

  (** (PG2): [put_ab a >> get_b = put_ab a] (and mirrored). *)
  let pg2_a cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG2 a)")
      (QCheck.pair cfg.gen_state cfg.gen_a)
      (fun (s, a) ->
        U.equal_result cfg.eq_b
          (U.run (U.put_ab a >> U.get_b) s)
          (U.run (U.put_ab a) s))

  let pg2_b cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG2 b)")
      (QCheck.pair cfg.gen_state cfg.gen_b)
      (fun (s, b) ->
        U.equal_result cfg.eq_a
          (U.run (U.put_ba b >> U.get_a) s)
          (U.run (U.put_ba b) s))

  (** (PP): [put_ab a >> put_ab a' = put_ab a'] (overwriteable only). *)
  let pp_a cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PP a)")
      (QCheck.triple cfg.gen_state cfg.gen_a cfg.gen_a)
      (fun (s, a, a') ->
        U.equal_result cfg.eq_b
          (U.run (U.put_ab a >> U.put_ab a') s)
          (U.run (U.put_ab a') s))

  let pp_b cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PP b)")
      (QCheck.triple cfg.gen_state cfg.gen_b cfg.gen_b)
      (fun (s, b, b') ->
        U.equal_result cfg.eq_a
          (U.run (U.put_ba b >> U.put_ba b') s)
          (U.run (U.put_ba b') s))

  let well_behaved cfg : QCheck.Test.t list =
    [
      gg_a cfg; gg_b cfg;
      gp_a cfg; gp_b cfg;
      pg1_a cfg; pg1_b cfg;
      pg2_a cfg; pg2_b cfg;
    ]

  let overwriteable cfg : QCheck.Test.t list =
    well_behaved cfg @ [ pp_a cfg; pp_b cfg ]
end
