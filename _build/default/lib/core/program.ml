(** A first-order language of bx operations and its interpreters.

    The paper's laws are equations between monadic computations; to test
    them {e observationally} we need a way to quantify over computations.
    This module provides the quantifiable fragment: finite sequences of
    get/set (or get/put) operations.  A program's observation — the list
    of values each operation returns, plus the final state — is a complete
    invariant for the state-monad instances in this library, so two bx are
    observationally equivalent iff they agree on all programs
    ({!Equivalence}).

    The law-based rewrites ({!simplify_sets}) let tests state theorems
    like "adjacent redundant operations can be removed without changing
    any observation". *)

type ('a, 'b) op =
  | Get_a
  | Get_b
  | Set_a of 'a
  | Set_b of 'b

type ('a, 'b) observation =
  | Saw_a of 'a
  | Saw_b of 'b
  | Did_set

let equal_op ~eq_a ~eq_b o1 o2 =
  match (o1, o2) with
  | Get_a, Get_a | Get_b, Get_b -> true
  | Set_a a1, Set_a a2 -> eq_a a1 a2
  | Set_b b1, Set_b b2 -> eq_b b1 b2
  | (Get_a | Get_b | Set_a _ | Set_b _), _ -> false

let equal_observation ~eq_a ~eq_b o1 o2 =
  match (o1, o2) with
  | Saw_a a1, Saw_a a2 -> eq_a a1 a2
  | Saw_b b1, Saw_b b2 -> eq_b b1 b2
  | Did_set, Did_set -> true
  | (Saw_a _ | Saw_b _ | Did_set), _ -> false

let pp_op pp_a pp_b fmt = function
  | Get_a -> Format.fprintf fmt "get_a"
  | Get_b -> Format.fprintf fmt "get_b"
  | Set_a a -> Format.fprintf fmt "set_a %a" pp_a a
  | Set_b b -> Format.fprintf fmt "set_b %a" pp_b b

(** Run a program against a concrete set-bx, collecting one observation
    per operation and the final state. *)
let interp (t : ('a, 'b, 's) Concrete.set_bx) (ops : ('a, 'b) op list)
    (s : 's) : ('a, 'b) observation list * 's =
  let obs_rev, s' =
    List.fold_left
      (fun (acc, s) op ->
        match op with
        | Get_a -> (Saw_a (t.Concrete.get_a s) :: acc, s)
        | Get_b -> (Saw_b (t.Concrete.get_b s) :: acc, s)
        | Set_a a -> (Did_set :: acc, t.Concrete.set_a a s)
        | Set_b b -> (Did_set :: acc, t.Concrete.set_b b s))
      ([], s) ops
  in
  (List.rev obs_rev, s')

(** Observations only, from a packed bx's initial state. *)
let observe (Concrete.Packed p : ('a, 'b) Concrete.packed)
    (ops : ('a, 'b) op list) : ('a, 'b) observation list =
  fst (interp p.Concrete.bx ops p.Concrete.init)

(* ------------------------------------------------------------------ *)
(* Law-based program rewriting                                         *)
(* ------------------------------------------------------------------ *)

(** Remove operations that the {e overwriteable} set-bx laws make
    redundant as state transformers: gets (which never change state) and
    all but the last of consecutive sets to the same side (law (SS)).
    The result has the same final state on every overwriteable bx —
    property-tested in [test/test_program.ml]. *)
let simplify_sets (ops : ('a, 'b) op list) : ('a, 'b) op list =
  let rec go = function
    | [] -> []
    | (Get_a | Get_b) :: rest -> go rest
    | Set_a _ :: (Set_a _ :: _ as rest) -> go rest
    | Set_b _ :: (Set_b _ :: _ as rest) -> go rest
    | op :: rest -> op :: go rest
  in
  (* Iterate to a fixpoint: removing gets can make sets adjacent. *)
  let rec fix ops =
    let ops' = go ops in
    if List.length ops' = List.length ops then ops' else fix ops'
  in
  fix ops

(** Insert a (GS)-redundant [get >>= set] round trip at position [i]:
    on any set-bx this cannot change any observation made by the other
    operations, nor the final state. *)
let insert_get_set_roundtrip (t : ('a, 'b, 's) Concrete.set_bx) (s0 : 's)
    (ops : ('a, 'b) op list) (i : int) : ('a, 'b) op list =
  let i = if List.length ops = 0 then 0 else i mod (List.length ops + 1) in
  let prefix = List.filteri (fun j _ -> j < i) ops in
  let suffix = List.filteri (fun j _ -> j >= i) ops in
  (* Replay the prefix to learn the state at the insertion point, then
     materialise get_a >>= set_a as [Set_a (current value)]. *)
  let _, s_mid = interp t prefix s0 in
  prefix @ [ Set_a (t.Concrete.get_a s_mid) ] @ suffix
