(** The two presentations of an entangled state monad (paper, Section 3).

    A {e set-bx} between [a] and [b] (Section 3.1) is a monad [M] with

    {v
    get_a : M a          get_b : M b
    set_a : a -> M ()    set_b : b -> M ()
    v}

    satisfying, on each side, the three laws (GG), (GS), (SG) — i.e. each
    side is a lawful state-monad cell over the {e shared} monad — and
    called {e overwriteable} if each side also satisfies (SS).

    A {e put-bx} (Section 3.2) replaces the setters with

    {v
    put_ab : a -> M b    ("putBA" in the paper: set the A side,
                           return the updated B view)
    put_ba : b -> M a
    v}

    satisfying (GG), (GP), (PG1), (PG2) (and (PP) when overwriteable).

    The two presentations are equivalent ({!Translate}, Lemmas 1–3).

    The crucial point of the paper (Section 3.4): the laws do {e not}
    require [set_a] and [set_b] to commute.  The two cells may share —
    be entangled through — hidden state, so setting one side can change
    the other (to restore consistency). *)

open Esm_monad

(** A set-bx: Section 3.1 of the paper. *)
module type SET_BX = sig
  type a
  type b

  include Monad_intf.S

  val get_a : a t
  val get_b : b t
  val set_a : a -> unit t
  val set_b : b -> unit t
end

(** A put-bx: Section 3.2 of the paper. *)
module type PUT_BX = sig
  type a
  type b

  include Monad_intf.S

  val get_a : a t
  val get_b : b t

  val put_ab : a -> b t
  (** The paper's [putBA]: install a new [a], observe the updated [b]. *)

  val put_ba : b -> a t
  (** The paper's [putAB]: install a new [b], observe the updated [a]. *)
end

(** The runnable refinement shared by every instance in this library: the
    monad is (isomorphic to) a state monad over [state], possibly with
    extra observable output folded into ['a result].  The [run] /
    [equal_result] pair is what the law checkers consume; it matches
    {!Esm_laws.Runnable.RUNNABLE} with [world := state]. *)
module type STATEFUL = sig
  type 'a t
  type state
  type 'a result

  val run : 'a t -> state -> 'a result
  val equal_result : ('a -> 'a -> bool) -> 'a result -> 'a result -> bool
end

module type STATEFUL_SET_BX = sig
  include SET_BX
  include STATEFUL with type 'a t := 'a t
end

module type STATEFUL_PUT_BX = sig
  include PUT_BX
  include STATEFUL with type 'a t := 'a t
end
