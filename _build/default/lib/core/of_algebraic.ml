(** Lemma 5: every algebraic bx [(R, fwd, bwd)] induces a set-bx over the
    state monad on consistent pairs:

    {v
    get_a    = fun (a, b) -> (a, (a, b))
    get_b    = fun (a, b) -> (b, (a, b))
    set_a a' = fun (_, b) -> ((), (a', fwd a' b))
    set_b b' = fun (a, _) -> ((), (bwd a b', b'))
    v}

    (Correct) ensures the setters preserve consistency of the pair;
    (Hippocratic) gives the (GS) laws.  If the bx is undoable the induced
    set-bx is overwriteable.

    The OCaml state type is all of ['a * 'b]; the consistent subset is an
    invariant: {!consistent} decides membership, {!repair} projects into
    it, and every operation maps consistent states to consistent states
    (property-tested in [test/test_of_algebraic.ml]). *)

module Make (X : sig
  type ta
  type tb

  val bx : (ta, tb) Esm_algbx.Algbx.t
  val equal_a : ta -> ta -> bool
  val equal_b : tb -> tb -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ta * X.tb
       and type 'x result = 'x * (X.ta * X.tb)

  val consistent : state -> bool
  (** Is this pair in the consistency relation [R]? *)

  val repair : state -> state
  (** Restore consistency by repairing the B side (used to build initial
      states and test generators). *)
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ta * X.tb

  module St = Esm_monad.State.Make (struct
    type t = X.ta * X.tb
  end)

  include (St : Esm_monad.Monad_intf.S with type 'x t = 'x St.t)

  type 'x result = 'x * state

  let run = St.run

  let equal_result eq (x1, (a1, b1)) (x2, (a2, b2)) =
    eq x1 x2 && X.equal_a a1 a2 && X.equal_b b1 b2

  let get_a : a t = St.gets fst
  let get_b : b t = St.gets snd

  let set_a (a' : a) : unit t =
    St.modify (fun (_, b) -> (a', Esm_algbx.Algbx.fwd X.bx a' b))

  let set_b (b' : b) : unit t =
    St.modify (fun (a, _) -> (Esm_algbx.Algbx.bwd X.bx a b', b'))

  let consistent (a, b) = Esm_algbx.Algbx.consistent X.bx a b
  let repair = Esm_algbx.Algbx.repair_fwd X.bx
end
