(** Nondeterministic bidirectional transformations — one of the effects
    the paper's conclusions propose reconciling with bidirectionality
    ("effects such as I/O, nondeterminism, exceptions, or probabilistic
    choice").

    The monad is the state-and-nondeterminism stack
    [M A = S -> (A * S) list]: a computation returns {e every} outcome.
    The interesting instances are algebraic bx whose consistency
    restorers are relations rather than functions — repairing after an
    update may have several equally good answers (think: several minimal
    ways to fix a database view).

    The set-bx laws hold in the nondeterministic reading — equality of
    computations is equality of {e outcome multisets} (we normalise by
    sorting) — provided the choice functions are:

    - {e correct}: every choice restores consistency, and
    - {e hippocratic at the choice level}: when the pair is already
      consistent no choice is offered and the state is kept.

    The overwriteable law (SS) generally fails: two updates can explore
    more branches than one. *)

module Make (X : sig
  type ta
  type tb

  val consistent : ta -> tb -> bool

  val fwd_choices : ta -> tb -> tb list
  (** Candidate repairs of the B side after the A side changed; consulted
      only when [consistent] fails; must be non-empty and all results
      consistent with the new A value. *)

  val bwd_choices : ta -> tb -> ta list
  val equal_a : ta -> ta -> bool
  val equal_b : tb -> tb -> bool
  val compare_state : (ta * tb) -> (ta * tb) -> int
  (** Total order on states, used to normalise outcome lists. *)
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ta * X.tb
       and type 'x t = X.ta * X.tb -> ('x * (X.ta * X.tb)) list
       and type 'x result = ('x * (X.ta * X.tb)) list

  val outcomes : 'x t -> state -> ('x * state) list
  (** All outcomes, in normalised order. *)

  val consistent : state -> bool
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ta * X.tb

  include Esm_monad.Extend.Make (struct
    type 'x t = state -> ('x * state) list

    let return x s = [ (x, s) ]

    let bind m f s =
      List.concat_map (fun (x, s') -> f x s') (m s)
  end)

  type 'x result = ('x * state) list

  let normalise outcomes =
    List.sort_uniq
      (fun (_, s1) (_, s2) -> X.compare_state s1 s2)
      outcomes

  let run (m : 'x t) (s : state) : 'x result = normalise (m s)

  let equal_result eq r1 r2 =
    List.length r1 = List.length r2
    && List.for_all2
         (fun (x1, (a1, b1)) (x2, (a2, b2)) ->
           eq x1 x2 && X.equal_a a1 a2 && X.equal_b b1 b2)
         r1 r2

  let outcomes = run

  let get_a : a t = fun (a, b) -> [ (a, (a, b)) ]
  let get_b : b t = fun (a, b) -> [ (b, (a, b)) ]

  let set_a (a' : a) : unit t =
   fun (_, b) ->
    if X.consistent a' b then [ ((), (a', b)) ]
    else List.map (fun b' -> ((), (a', b'))) (X.fwd_choices a' b)

  let set_b (b' : b) : unit t =
   fun (a, _) ->
    if X.consistent a b' then [ ((), (a, b')) ]
    else List.map (fun a' -> ((), (a', b'))) (X.bwd_choices a b')

  let consistent (a, b) = X.consistent a b
end
