(** Spans of asymmetric lenses as entangled state monads.

    A {e span} is a common source type ['s] with a lens onto each leg:

    {v
            S
           / \
     left /   \ right
         v     v
         A     B
    v}

    This is the standard category-theoretic presentation of symmetric bx
    built from asymmetric lenses, and it generalises the paper's Lemma 4:
    [Of_lens] is exactly the span whose left leg is the identity lens.
    The induced set-bx reads each view with the corresponding [get] and
    writes it with the corresponding [put]; the two views are entangled
    through the shared source.

    Laws: if both legs are well-behaved lenses, the span is a lawful
    set-bx ((GG), (GS), (SG) per side follow legwise from (GetPut) and
    (PutGet)); if both legs are very well-behaved it is overwriteable.
    Property-tested in [test/test_span.ml]. *)

type ('a, 'b, 's) t = {
  left : ('s, 'a) Esm_lens.Lens.t;
  right : ('s, 'b) Esm_lens.Lens.t;
}

let v ~left ~right = { left; right }

(** The induced concrete set-bx over the shared source. *)
let to_set_bx (span : ('a, 'b, 's) t) : ('a, 'b, 's) Concrete.set_bx =
  {
    Concrete.name =
      Printf.sprintf "span(%s, %s)"
        (Esm_lens.Lens.name span.left)
        (Esm_lens.Lens.name span.right);
    get_a = Esm_lens.Lens.get span.left;
    get_b = Esm_lens.Lens.get span.right;
    set_a = (fun a s -> Esm_lens.Lens.put span.left s a);
    set_b = (fun b s -> Esm_lens.Lens.put span.right s b);
  }

(** Lemma 4 as a degenerate span: identity left leg. *)
let of_lens (l : ('s, 'v) Esm_lens.Lens.t) : ('s, 'v, 's) t =
  { left = Esm_lens.Lens.id; right = l }

(** Swap the legs. *)
let flip (span : ('a, 'b, 's) t) : ('b, 'a, 's) t =
  { left = span.right; right = span.left }

(** Pre-compose both legs with a lens into the source: re-root the span
    at a bigger source. *)
let re_root (outer : ('t, 's) Esm_lens.Lens.t) (span : ('a, 'b, 's) t) :
    ('a, 'b, 't) t =
  {
    left = Esm_lens.Lens.compose outer span.left;
    right = Esm_lens.Lens.compose outer span.right;
  }

(** Tensor two spans: sources, and both view sides, pair up. *)
let tensor (s1 : ('a1, 'b1, 't1) t) (s2 : ('a2, 'b2, 't2) t) :
    ('a1 * 'a2, 'b1 * 'b2, 't1 * 't2) t =
  {
    left = Esm_lens.Lens.pair s1.left s2.left;
    right = Esm_lens.Lens.pair s1.right s2.right;
  }

(** The functor form, for use with the monadic law suites. *)
module Make (X : sig
  type a
  type b
  type s

  val span : (a, b, s) t
  val equal_s : s -> s -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.a
       and type b = X.b
       and type state = X.s
       and type 'x result = 'x * X.s
end = struct
  type a = X.a
  type b = X.b
  type state = X.s

  module St = Esm_monad.State.Make (struct
    type t = X.s
  end)

  include (St : Esm_monad.Monad_intf.S with type 'x t = 'x St.t)

  type 'x result = 'x * state

  let run = St.run
  let equal_result eq (x1, s1) (x2, s2) = eq x1 x2 && X.equal_s s1 s2

  let bx = to_set_bx X.span
  let get_a : a t = St.gets bx.Concrete.get_a
  let get_b : b t = St.gets bx.Concrete.get_b
  let set_a (a : a) : unit t = St.modify (bx.Concrete.set_a a)
  let set_b (b : b) : unit t = St.modify (bx.Concrete.set_b b)
end
