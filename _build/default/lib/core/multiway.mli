(** Multi-directional entanglement: three views over shared hidden state.

    The paper's introduction allows bx over "two or more" sources; this
    module carries the two-source formal development to three.  Every
    side of a tri-bx is a lawful state-monad cell over the shared state,
    and all three are entangled. *)

type ('a, 'b, 'c, 's) t = {
  name : string;
  get_a : 's -> 'a;
  get_b : 's -> 'b;
  get_c : 's -> 'c;
  set_a : 'a -> 's -> 's;
  set_b : 'b -> 's -> 's;
  set_c : 'c -> 's -> 's;
}

val of_chain :
  ('a, 'b, 's1) Concrete.set_bx ->
  ('b, 'c, 's2) Concrete.set_bx ->
  ('a, 'b, 'c, 's1 * 's2) t
(** Chain two binary bx sharing their middle type; lawful on
    {!Compose.aligned} states. *)

val to_binary : ('a, 'b, 'c, 's) t -> ('a, 'c, 's) Concrete.set_bx
(** Forget the middle view (observationally {!Compose.compose}). *)

val face_ab : ('a, 'b, 'c, 's) t -> ('a, 'b, 's) Concrete.set_bx
val face_bc : ('a, 'b, 'c, 's) t -> ('b, 'c, 's) Concrete.set_bx

(** An update on one of the three sides. *)
type ('a, 'b, 'c) op = Set_a of 'a | Set_b of 'b | Set_c of 'c

val apply : ('a, 'b, 'c, 's) t -> ('a, 'b, 'c) op -> 's -> 's
