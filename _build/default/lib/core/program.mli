(** A first-order language of bx operations and its interpreters.

    The paper's laws are equations between monadic computations; to test
    them observationally we quantify over the fragment that matters for
    state monads: finite sequences of get/set operations.  A program's
    observation — the value each operation returns plus the final state —
    is a complete invariant for the instances in this library, so two bx
    are observationally equivalent iff they agree on all programs
    ({!Equivalence}). *)

type ('a, 'b) op = Get_a | Get_b | Set_a of 'a | Set_b of 'b

type ('a, 'b) observation = Saw_a of 'a | Saw_b of 'b | Did_set

val equal_op :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) op -> ('a, 'b) op -> bool

val equal_observation :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) observation -> ('a, 'b) observation -> bool

val pp_op :
  (Format.formatter -> 'a -> unit) ->
  (Format.formatter -> 'b -> unit) ->
  Format.formatter -> ('a, 'b) op -> unit

val interp :
  ('a, 'b, 's) Concrete.set_bx ->
  ('a, 'b) op list -> 's ->
  ('a, 'b) observation list * 's
(** Run a program, collecting one observation per operation and the
    final state. *)

val observe :
  ('a, 'b) Concrete.packed -> ('a, 'b) op list -> ('a, 'b) observation list
(** Observations only, from the packed bx's initial state. *)

(** {1 Law-based program rewriting} *)

val simplify_sets : ('a, 'b) op list -> ('a, 'b) op list
(** Remove operations that the overwriteable laws make redundant as
    state transformers: all gets, and all but the last of consecutive
    same-side sets (law (SS)).  Preserves the final state on every
    overwriteable bx (property-tested). *)

val insert_get_set_roundtrip :
  ('a, 'b, 's) Concrete.set_bx -> 's ->
  ('a, 'b) op list -> int -> ('a, 'b) op list
(** Insert a (GS)-redundant [get >>= set] round trip at position [i mod
    (length + 1)]; on any set-bx this changes neither the other
    operations' observations nor the final state. *)
