(** A bx with a richer witness structure: every effective update is
    recorded in a journal carried inside the hidden state — a concrete
    instance of the paper's closing remark that "bx with richer
    complements or witness structures" should be absorbed into the
    monad's hidden state.

    Only changing sets are journalled (like the change-triggered prints
    of §4), so the wrapper still satisfies (GG), (GS), (SG) with the
    journal included in state equality — but not (SS): overwriting
    leaves a longer journal than writing once. *)

type ('a, 'b) edit = Edited_a of 'a | Edited_b of 'b

val equal_edit :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) edit -> ('a, 'b) edit -> bool

(** The journalled state: underlying state plus the edit log (newest
    first internally). *)
type ('a, 'b, 's) state = { current : 's; log : ('a, 'b) edit list }

val initial : 's -> ('a, 'b, 's) state

val history : ('a, 'b, 's) state -> ('a, 'b) edit list
(** Effective edits, oldest first. *)

val equal_state :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  eq_s:('s -> 's -> bool) ->
  ('a, 'b, 's) state -> ('a, 'b, 's) state -> bool

val journalled :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b, 's) Concrete.set_bx ->
  ('a, 'b, ('a, 'b, 's) state) Concrete.set_bx
(** Wrap a concrete set-bx with change journalling. *)

(** Checkpointing with undo: stacks every prior state that an effective
    update replaced.  Preserves (GG)/(GS)/(SG); loses (SS). *)
module Undo : sig
  type 's state = { current : 's; past : 's list }

  val initial : 's -> 's state

  val depth : 's state -> int
  (** Number of undoable steps. *)

  val equal_state : eq_s:('s -> 's -> bool) -> 's state -> 's state -> bool

  val undo : 's state -> 's state option
  (** Roll back the most recent effective update; [None] at the
      beginning of history. *)

  val wrap :
    eq_a:('a -> 'a -> bool) ->
    eq_b:('b -> 'b -> bool) ->
    ('a, 'b, 's) Concrete.set_bx ->
    ('a, 'b, 's state) Concrete.set_bx
end
