(** The translations between set-bx and put-bx (paper, Section 3.3).

    Given a set-bx [t], [set2pp t] is the put-bx with

    {v
    put_ab a = set_a a >> get_b
    put_ba b = set_b b >> get_a
    v}

    and given a put-bx [u], [pp2set u] is the set-bx with

    {v
    set_a a = put_ab a >> return ()
    set_b b = put_ba b >> return ()
    v}

    Lemmas 1–3 state that these preserve the (overwriteable) laws and are
    mutually inverse; the test suite [test/test_translate.ml] validates
    all three lemmas extensionally on several instances. *)

(** Lemma 1 (construction): [set2pp]. *)
module Set_to_put (T : Bx_intf.SET_BX) :
  Bx_intf.PUT_BX
    with type a = T.a
     and type b = T.b
     and type 'x t = 'x T.t = struct
  include T

  let put_ab a = T.Infix.( >> ) (T.set_a a) T.get_b
  let put_ba b = T.Infix.( >> ) (T.set_b b) T.get_a
end

(** Lemma 2 (construction): [pp2set]. *)
module Put_to_set (U : Bx_intf.PUT_BX) :
  Bx_intf.SET_BX
    with type a = U.a
     and type b = U.b
     and type 'x t = 'x U.t = struct
  include U

  let set_a a = U.ignore_m (U.put_ab a)
  let set_b b = U.ignore_m (U.put_ba b)
end

(** Stateful variants: the monad (hence [run]) is unchanged by the
    translations, so these simply re-attach the runnable structure. *)

module Set_to_put_stateful (T : Bx_intf.STATEFUL_SET_BX) :
  Bx_intf.STATEFUL_PUT_BX
    with type a = T.a
     and type b = T.b
     and type 'x t = 'x T.t
     and type state = T.state
     and type 'x result = 'x T.result = struct
  include Set_to_put (T)

  type state = T.state
  type 'x result = 'x T.result

  let run = T.run
  let equal_result = T.equal_result
end

module Put_to_set_stateful (U : Bx_intf.STATEFUL_PUT_BX) :
  Bx_intf.STATEFUL_SET_BX
    with type a = U.a
     and type b = U.b
     and type 'x t = 'x U.t
     and type state = U.state
     and type 'x result = 'x U.result = struct
  include Put_to_set (U)

  type state = U.state
  type 'x result = 'x U.result

  let run = U.run
  let equal_result = U.equal_result
end
