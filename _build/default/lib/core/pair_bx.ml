(** Section 3.4: the state monad on pairs [A * B] as a set-bx.

    This instance satisfies laws {e stronger} than the set-bx definition
    requires — in particular the commutation

    {v set_a a >> set_b b  =  set_b b >> set_a a v}

    which a general set-bx need {e not} satisfy: in an entangled instance,
    setting one side also changes the other to restore consistency.  The
    test suite verifies both directions: commutation holds here and fails
    for a non-trivial {!Of_lens} instance.

    It arises as the special case of {!Of_algebraic} whose consistency
    relation is universally true (no restoration ever needed). *)

module Make (X : sig
  type ta
  type tb

  val equal_a : ta -> ta -> bool
  val equal_b : tb -> tb -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ta * X.tb
       and type 'x result = 'x * (X.ta * X.tb)
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ta * X.tb

  module St = Esm_monad.State.Make (struct
    type t = X.ta * X.tb
  end)

  include (St : Esm_monad.Monad_intf.S with type 'x t = 'x St.t)

  type 'x result = 'x * state

  let run = St.run

  let equal_result eq (x1, (a1, b1)) (x2, (a2, b2)) =
    eq x1 x2 && X.equal_a a1 a2 && X.equal_b b1 b2

  let get_a : a t = St.gets fst
  let get_b : b t = St.gets snd
  let set_a (a : a) : unit t = St.modify (fun (_, b) -> (a, b))
  let set_b (b : b) : unit t = St.modify (fun (a, _) -> (a, b))
end
