(** Probabilistic bidirectional transformations — the "probabilistic
    choice" entry in the paper's programme of effects (§5).

    The monad is the state-and-distribution stack
    [M A = S -> Dist (A * S)]: an update whose repair is ambiguous
    resolves to a {e distribution} over repaired states.  This is the
    quantitative refinement of {!Nondet}: instead of a set of minimal
    repairs, a weighted preference among them.

    The set-bx laws hold in the distribution reading — computations are
    equal when they denote the same distribution after normalisation —
    under the same conditions as {!Nondet}: repairs are consulted only
    when consistency actually fails, and every weighted repair restores
    consistency.  (SS) fails in general. *)

module Dist = Esm_monad.Dist

module Make (X : sig
  type ta
  type tb

  val consistent : ta -> tb -> bool

  val fwd_dist : ta -> tb -> tb Dist.t
  (** Distribution over B-repairs after the A side changed; consulted
      only when [consistent] fails; all outcomes must be consistent with
      the new A value and the mass must be 1. *)

  val bwd_dist : ta -> tb -> ta Dist.t
  val equal_a : ta -> ta -> bool
  val equal_b : tb -> tb -> bool
  val compare_state : ta * tb -> ta * tb -> int
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.ta
       and type b = X.tb
       and type state = X.ta * X.tb
       and type 'x t = X.ta * X.tb -> ('x * (X.ta * X.tb)) Dist.t
       and type 'x result = ('x * (X.ta * X.tb)) Dist.t

  val distribution : 'x t -> state -> ('x * state) Dist.t
  (** The normalised outcome distribution. *)

  val consistent : state -> bool
end = struct
  type a = X.ta
  type b = X.tb
  type state = X.ta * X.tb

  include Esm_monad.Extend.Make (struct
    type 'x t = state -> ('x * state) Dist.t

    let return x s = Dist.return (x, s)
    let bind m f s = Dist.bind (m s) (fun (x, s') -> f x s')
  end)

  type 'x result = ('x * state) Dist.t

  (* Outcomes are compared by state only: in the law equations both
     sides return the same value at any given state, so this is sound
     for our usage (and matches Nondet). *)
  let compare_outcome (_, s1) (_, s2) = X.compare_state s1 s2

  let run (m : 'x t) (s : state) : 'x result =
    Dist.normalise ~compare_outcome (m s)

  let equal_result eq r1 r2 =
    let n1 = Dist.normalise ~compare_outcome r1 in
    let n2 = Dist.normalise ~compare_outcome r2 in
    List.length n1 = List.length n2
    && List.for_all2
         (fun ((x1, (a1, b1)), p) ((x2, (a2, b2)), q) ->
           eq x1 x2 && X.equal_a a1 a2 && X.equal_b b1 b2
           && Float.abs (p -. q) <= 1e-9)
         n1 n2

  let distribution = run

  let get_a : a t = fun (a, b) -> Dist.return (a, (a, b))
  let get_b : b t = fun (a, b) -> Dist.return (b, (a, b))

  let set_a (a' : a) : unit t =
   fun (_, b) ->
    if X.consistent a' b then Dist.return ((), (a', b))
    else Dist.map (fun b' -> ((), (a', b'))) (X.fwd_dist a' b)

  let set_b (b' : b) : unit t =
   fun (a, _) ->
    if X.consistent a b' then Dist.return ((), (a, b'))
    else Dist.map (fun a' -> ((), (a', b'))) (X.bwd_dist a b')

  let consistent (a, b) = X.consistent a b
end
