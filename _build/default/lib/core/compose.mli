(** Composition of entangled state monads — one of the open problems in
    the paper's conclusions.

    For state-based instances there is a natural candidate: compose
    [t1 : A <-> B] over [s1] with [t2 : B <-> C] over [s2] on the
    {e aligned} pairs ([t1.get_b x1 = t2.get_a x2]), propagating updates
    through the shared middle.  On the aligned subset the composite
    satisfies the set-bx laws whenever both components do; off it, (GS)
    genuinely fails — composition demands a restriction of the state
    space, mirroring how symmetric lenses must be quotiented.  Both
    facts are property-tested in [test/test_compose.ml]. *)

val aligned :
  eq_mid:('b -> 'b -> bool) ->
  ('a, 'b, 's1) Concrete.set_bx ->
  ('b, 'c, 's2) Concrete.set_bx ->
  's1 * 's2 -> bool
(** The alignment invariant of the composite state. *)

val align :
  ('a, 'b, 's1) Concrete.set_bx ->
  ('b, 'c, 's2) Concrete.set_bx ->
  's1 * 's2 -> 's1 * 's2
(** Force alignment by pushing the left component's B view into the
    right component. *)

val compose :
  ('a, 'b, 's1) Concrete.set_bx ->
  ('b, 'c, 's2) Concrete.set_bx ->
  ('a, 'c, 's1 * 's2) Concrete.set_bx
(** Sequential composition; law-abiding on the {!aligned} subset.  Use
    {!align} to construct valid initial states. *)

val ( >>> ) :
  ('a, 'b, 's1) Concrete.set_bx ->
  ('b, 'c, 's2) Concrete.set_bx ->
  ('a, 'c, 's1 * 's2) Concrete.set_bx
(** Infix {!compose}. *)

val compose_packed :
  ('a, 'b) Concrete.packed ->
  ('b, 'c) Concrete.packed ->
  ('a, 'c) Concrete.packed
(** Compose packed bx, aligning the initial states. *)

val identity : unit -> ('a, 'a, 'a) Concrete.set_bx
(** The identity bx over a single value: unit for composition up to
    observational equivalence. *)

val chain_packed : int -> ('a, 'a) Concrete.packed -> ('a, 'a) Concrete.packed
(** [chain_packed n p]: n-fold self-composition (used by the
    composition-scaling benchmark). *)
