(** Lemma 6: every symmetric lens [(put_r, put_l)] with complement [C]
    induces a put-bx over the state monad on consistent triples
    [(a, b, c)]:

    {v
    get_a     = fun (a, b, c) -> (a, (a, b, c))
    get_b     = fun (a, b, c) -> (b, (a, b, c))
    put_ab a' = fun (_, _, c) -> let (b', c') = put_r a' c in (b', (a', b', c'))
    put_ba b' = fun (_, _, c) -> let (a', c') = put_l b' c in (a', (a', b', c'))
    v}

    Consistency of a triple means [put_r a c = (b, c)] and
    [put_l b c = (a, c)]; the symmetric-lens laws (PutRL)/(PutLR) make the
    put operations preserve it, and the put-bx laws then follow.

    The OCaml state type is all of [a * b * c]; consistency is an
    invariant, decidable via {!consistent}, and {!initial} produces a
    consistent triple by pushing a seed value through the fresh lens. *)

module Make
    (I : Esm_symlens.Symlens.INSTANCE)
    (E : sig
      val equal_a : I.a -> I.a -> bool
      val equal_b : I.b -> I.b -> bool
    end) : sig
  include
    Bx_intf.STATEFUL_PUT_BX
      with type a = I.a
       and type b = I.b
       and type state = I.a * I.b * I.c
       and type 'x result = 'x * (I.a * I.b * I.c)

  val consistent : state -> bool
  val initial : seed_a:I.a -> state
end = struct
  type a = I.a
  type b = I.b
  type state = I.a * I.b * I.c

  module St = Esm_monad.State.Make (struct
    type t = I.a * I.b * I.c
  end)

  include (St : Esm_monad.Monad_intf.S with type 'x t = 'x St.t)

  type 'x result = 'x * state

  let run = St.run

  let equal_result eq (x1, (a1, b1, c1)) (x2, (a2, b2, c2)) =
    eq x1 x2 && E.equal_a a1 a2 && E.equal_b b1 b2 && I.equal_c c1 c2

  let get_a : a t = St.gets (fun (a, _, _) -> a)
  let get_b : b t = St.gets (fun (_, b, _) -> b)

  let put_ab (a' : a) : b t =
   fun (_, _, c) ->
    let b', c' = I.put_r a' c in
    (b', (a', b', c'))

  let put_ba (b' : b) : a t =
   fun (_, _, c) ->
    let a', c' = I.put_l b' c in
    (a', (a', b', c'))

  let consistent (a, b, c) =
    let b', c1 = I.put_r a c in
    let a', c2 = I.put_l b c in
    E.equal_b b b' && I.equal_c c c1 && E.equal_a a a' && I.equal_c c c2

  let initial ~seed_a =
    let b0, c0 = I.put_r seed_a I.init in
    (seed_a, b0, c0)
end
