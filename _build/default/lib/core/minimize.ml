(** Quotients of entangled state monads by observational equivalence.

    The paper's conclusions: "Symmetric lenses are quotiented by an
    equivalence relation in order for properties such as associativity of
    composition to hold.  We expect something similar to be needed for
    entangled state monads."  This module computes that quotient
    effectively for bx whose reachable state space (under finite update
    alphabets) is finite: explore the states reachable from the initial
    one, then refine partitions Moore-style until blocks are stable under
    every update, and rebuild the bx over the block indices.

    The result is the minimal transition system bisimilar to the input —
    hidden state that never influences any observation (junk counters,
    dead complement, journal noise below the observation granularity)
    collapses away.  Tests verify the quotient is observationally
    equivalent to the input and that deliberately redundant state
    disappears. *)

type ('a, 'b) outcome = {
  quotient : ('a, 'b) Concrete.packed;
      (** the minimized bx (state type: block index) *)
  reachable : int;  (** number of distinct states explored *)
  classes : int;  (** number of equivalence classes after refinement *)
  complete : bool;
      (** false if exploration hit [max_states] before closing; the
          quotient is then only valid for programs staying inside the
          explored region *)
}

let minimize (type a b) ?(max_states = 2048) ~(values_a : a list)
    ~(values_b : b list) ~(eq_a : a -> a -> bool) ~(eq_b : b -> b -> bool)
    (packed : (a, b) Concrete.packed) : (a, b) outcome =
  match packed with
  | Concrete.Packed (type s0) (p : (a, b, s0) Concrete.packed_repr) ->
      let bx = p.Concrete.bx in
      let eq_state = p.Concrete.eq_state in
      (* --- 1. explore the reachable states (BFS) ------------------- *)
      let states : s0 array ref = ref (Array.make 0 p.Concrete.init) in
      let count = ref 0 in
      let find (s : s0) : int option =
        let rec go i =
          if i >= !count then None
          else if eq_state !states.(i) s then Some i
          else go (i + 1)
        in
        go 0
      in
      let push (s : s0) : int =
        if !count >= Array.length !states then begin
          let bigger = Array.make (max 16 (2 * Array.length !states)) s in
          Array.blit !states 0 bigger 0 !count;
          states := bigger
        end;
        !states.(!count) <- s;
        incr count;
        !count - 1
      in
      let complete = ref true in
      let queue = Queue.create () in
      Queue.add (push p.Concrete.init) queue;
      let successors (s : s0) : s0 list =
        List.map (fun v -> bx.Concrete.set_a v s) values_a
        @ List.map (fun v -> bx.Concrete.set_b v s) values_b
      in
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        List.iter
          (fun s' ->
            match find s' with
            | Some _ -> ()
            | None ->
                if !count >= max_states then complete := false
                else Queue.add (push s') queue)
          (successors !states.(i))
      done;
      let n = !count in
      let state i = !states.(i) in
      (* transition tables: action k = index into values_a @ values_b *)
      let actions =
        List.map (fun v s -> bx.Concrete.set_a v s) values_a
        @ List.map (fun v s -> bx.Concrete.set_b v s) values_b
      in
      let delta =
        List.map
          (fun act ->
            Array.init n (fun i ->
                match find (act (state i)) with
                | Some j -> j
                | None -> -1 (* outside the explored region *)))
          actions
      in
      (* --- 2. initial partition: by observation -------------------- *)
      let block = Array.make n 0 in
      let assign_initial () =
        let reps = ref [] in
        Array.iteri
          (fun i _ ->
            let oa = bx.Concrete.get_a (state i) in
            let ob = bx.Concrete.get_b (state i) in
            let rec go = function
              | [] ->
                  let b = List.length !reps in
                  reps := !reps @ [ (oa, ob) ];
                  b
              | (oa', ob') :: rest ->
                  if eq_a oa oa' && eq_b ob ob' then
                    List.length !reps - List.length rest - 1
                  else go rest
            in
            block.(i) <- go !reps)
          block;
        List.length !reps
      in
      let blocks = ref (assign_initial ()) in
      (* --- 3. Moore refinement -------------------------------------- *)
      let signature i =
        (block.(i), List.map (fun d -> if d.(i) < 0 then -1 else block.(d.(i))) delta)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        let sigs = Array.init n signature in
        let reps = ref [] in
        let new_block = Array.make n 0 in
        Array.iteri
          (fun i _ ->
            let rec go k = function
              | [] ->
                  reps := !reps @ [ sigs.(i) ];
                  List.length !reps - 1
              | sg :: rest -> if sg = sigs.(i) then k else go (k + 1) rest
            in
            new_block.(i) <- go 0 !reps)
          new_block;
        let nb = List.length !reps in
        if nb <> !blocks then begin
          blocks := nb;
          Array.blit new_block 0 block 0 n;
          changed := true
        end
      done;
      (* --- 4. rebuild the bx over block representatives ------------ *)
      let representative = Array.make !blocks 0 in
      for i = n - 1 downto 0 do
        representative.(block.(i)) <- i
      done;
      let lookup_a v =
        let rec go k = function
          | [] -> None
          | v' :: _ when eq_a v v' -> Some k
          | _ :: rest -> go (k + 1) rest
        in
        go 0 values_a
      in
      let lookup_b v =
        let rec go k = function
          | [] -> None
          | v' :: _ when eq_b v v' -> Some k
          | _ :: rest -> go (k + 1) rest
        in
        go 0 values_b
      in
      let n_a = List.length values_a in
      let step_via_delta idx i =
        let d = List.nth delta idx in
        let j = d.(representative.(i)) in
        if j < 0 then i (* outside the explored region: stay put *)
        else block.(j)
      in
      let quotient_bx : (a, b, int) Concrete.set_bx =
        {
          Concrete.name = "minimize(" ^ bx.Concrete.name ^ ")";
          get_a = (fun i -> bx.Concrete.get_a (state representative.(i)));
          get_b = (fun i -> bx.Concrete.get_b (state representative.(i)));
          set_a =
            (fun v i ->
              match lookup_a v with
              | Some k -> step_via_delta k i
              | None ->
                  (* value outside the alphabet: fall back to the
                     underlying bx and re-locate (best effort) *)
                  let s' = bx.Concrete.set_a v (state representative.(i)) in
                  (match find s' with Some j -> block.(j) | None -> i));
          set_b =
            (fun v i ->
              match lookup_b v with
              | Some k -> step_via_delta (n_a + k) i
              | None ->
                  let s' = bx.Concrete.set_b v (state representative.(i)) in
                  (match find s' with Some j -> block.(j) | None -> i));
        }
      in
      {
        quotient =
          Concrete.pack ~bx:quotient_bx ~init:block.(0) ~eq_state:Int.equal;
        reachable = n;
        classes = !blocks;
        complete = !complete;
      }
