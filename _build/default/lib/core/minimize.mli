(** Quotients of entangled state monads by observational equivalence —
    the analogue of symmetric-lens quotienting the paper's conclusions
    anticipate.

    For a bx whose state space reachable from the packed initial state
    (under finite update alphabets) is finite, {!minimize} explores that
    space, refines partitions Moore-style until blocks are stable under
    every update, and rebuilds the bx over block indices.  Hidden state
    that never influences an observation collapses away. *)

type ('a, 'b) outcome = {
  quotient : ('a, 'b) Concrete.packed;
      (** the minimized bx (state type: block index) *)
  reachable : int;  (** distinct raw states explored *)
  classes : int;  (** equivalence classes after refinement *)
  complete : bool;
      (** false if exploration hit [max_states] before closing; the
          quotient is then only valid inside the explored region *)
}

val minimize :
  ?max_states:int ->
  values_a:'a list ->
  values_b:'b list ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) outcome
