(** Observational equivalence of entangled state monads — one of the open
    problems the paper's conclusions raise ("We are currently
    investigating the central issues of equivalence and composition").

    Two packed set-bx (possibly with different hidden state types) are
    {e observationally equivalent} when every program of get/set
    operations yields the same observations from their initial states.
    For the state-monad instances here, observations on all finite
    programs determine the bx up to bisimulation of reachable states, so
    property-testing over generated programs is a sound (and, on finite
    value domains, exhaustive-in-the-limit) approximation.

    This is the tool the test suite uses to validate Lemma 3 (the
    set2pp/pp2set round trip is the identity) and the agreement between
    functor-level and record-level constructions. *)

(** Do the two packed bx agree on this particular program? *)
let agree_on ~(eq_a : 'a -> 'a -> bool) ~(eq_b : 'b -> 'b -> bool)
    (p1 : ('a, 'b) Concrete.packed) (p2 : ('a, 'b) Concrete.packed)
    (ops : ('a, 'b) Program.op list) : bool =
  let obs1 = Program.observe p1 ops in
  let obs2 = Program.observe p2 ops in
  List.length obs1 = List.length obs2
  && List.for_all2 (Program.equal_observation ~eq_a ~eq_b) obs1 obs2

(** Generator of programs over the given value generators. *)
let gen_ops ?(max_length = 12) (gen_a : 'a QCheck.arbitrary)
    (gen_b : 'b QCheck.arbitrary) : ('a, 'b) Program.op list QCheck.arbitrary
    =
  let open QCheck in
  list_of_size
    (Gen.int_bound max_length)
    (oneof
       [
         always Program.Get_a;
         always Program.Get_b;
         map (fun a -> Program.Set_a a) gen_a;
         map (fun b -> Program.Set_b b) gen_b;
       ])

(** QCheck test: the two bx are observationally equivalent. *)
let test ?(count = 500) ?max_length ~name ~(eq_a : 'a -> 'a -> bool)
    ~(eq_b : 'b -> 'b -> bool) ~(gen_a : 'a QCheck.arbitrary)
    ~(gen_b : 'b QCheck.arbitrary) (p1 : ('a, 'b) Concrete.packed)
    (p2 : ('a, 'b) Concrete.packed) : QCheck.Test.t =
  QCheck.Test.make ~count ~name
    (gen_ops ?max_length gen_a gen_b)
    (agree_on ~eq_a ~eq_b p1 p2)

(** One-shot boolean check over explicitly supplied programs (used by
    examples and quick smoke tests). *)
let equivalent_on ~eq_a ~eq_b p1 p2 (programs : ('a, 'b) Program.op list list)
    : bool =
  List.for_all (agree_on ~eq_a ~eq_b p1 p2) programs
