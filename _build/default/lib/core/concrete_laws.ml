(** Law suites for the record representation ({!Concrete.set_bx}).

    At the record level the monadic laws specialise to first-order
    equations — (GG) holds by construction since the getters are pure
    projections, and the remaining laws become:

    - (GS_a) [set_a (get_a s) s = s]                 (hippocraticness)
    - (SG_a) [get_a (set_a a s) = a]                 (the set wins)
    - (SS_a) [set_a a' (set_a a s) = set_a a' s]     (overwriteability)

    (and mirrored on the B side).  Tests confirm these agree with the
    monadic suites via the functor/record conversions. *)

let default_count = 500

type ('a, 'b, 's) config = {
  name : string;
  count : int;
  gen_state : 's QCheck.arbitrary;
  gen_a : 'a QCheck.arbitrary;
  gen_b : 'b QCheck.arbitrary;
  eq_a : 'a -> 'a -> bool;
  eq_b : 'b -> 'b -> bool;
  eq_state : 's -> 's -> bool;
}

let config ?(count = default_count) ~name ~gen_state ~gen_a ~gen_b ~eq_a
    ~eq_b ~eq_state () =
  { name; count; gen_state; gen_a; gen_b; eq_a; eq_b; eq_state }

let gs_a cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".A (GS)") cfg.gen_state
    (fun s -> cfg.eq_state (t.Concrete.set_a (t.Concrete.get_a s) s) s)

let gs_b cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".B (GS)") cfg.gen_state
    (fun s -> cfg.eq_state (t.Concrete.set_b (t.Concrete.get_b s) s) s)

let sg_a cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".A (SG)")
    (QCheck.pair cfg.gen_state cfg.gen_a)
    (fun (s, a) -> cfg.eq_a (t.Concrete.get_a (t.Concrete.set_a a s)) a)

let sg_b cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".B (SG)")
    (QCheck.pair cfg.gen_state cfg.gen_b)
    (fun (s, b) -> cfg.eq_b (t.Concrete.get_b (t.Concrete.set_b b s)) b)

let ss_a cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".A (SS)")
    (QCheck.triple cfg.gen_state cfg.gen_a cfg.gen_a)
    (fun (s, a, a') ->
      cfg.eq_state
        (t.Concrete.set_a a' (t.Concrete.set_a a s))
        (t.Concrete.set_a a' s))

let ss_b cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ ".B (SS)")
    (QCheck.triple cfg.gen_state cfg.gen_b cfg.gen_b)
    (fun (s, b, b') ->
      cfg.eq_state
        (t.Concrete.set_b b' (t.Concrete.set_b b s))
        (t.Concrete.set_b b' s))

let well_behaved cfg t : QCheck.Test.t list =
  [ gs_a cfg t; gs_b cfg t; sg_a cfg t; sg_b cfg t ]

let overwriteable cfg t : QCheck.Test.t list =
  well_behaved cfg t @ [ ss_a cfg t; ss_b cfg t ]

(** Section 3.4 commutation at the record level. *)
let sets_commute cfg (t : ('a, 'b, 's) Concrete.set_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count
    ~name:(cfg.name ^ " (set_a/set_b commute)")
    (QCheck.triple cfg.gen_state cfg.gen_a cfg.gen_b)
    (fun (s, a, b) ->
      Concrete.sets_commute_at t ~eq_state:cfg.eq_state a b s)

(* Record-level put-bx laws. *)

let put_gp_a cfg (u : ('a, 'b, 's) Concrete.put_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GP a)") cfg.gen_state
    (fun s ->
      let b, s' = u.Concrete.put_ab (u.Concrete.p_get_a s) s in
      cfg.eq_b b (u.Concrete.p_get_b s) && cfg.eq_state s' s)

let put_gp_b cfg (u : ('a, 'b, 's) Concrete.put_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GP b)") cfg.gen_state
    (fun s ->
      let a, s' = u.Concrete.put_ba (u.Concrete.p_get_b s) s in
      cfg.eq_a a (u.Concrete.p_get_a s) && cfg.eq_state s' s)

let put_pg_a cfg (u : ('a, 'b, 's) Concrete.put_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG1/PG2 a)")
    (QCheck.pair cfg.gen_state cfg.gen_a)
    (fun (s, a) ->
      let b, s' = u.Concrete.put_ab a s in
      cfg.eq_a (u.Concrete.p_get_a s') a && cfg.eq_b (u.Concrete.p_get_b s') b)

let put_pg_b cfg (u : ('a, 'b, 's) Concrete.put_bx) : QCheck.Test.t =
  QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (PG1/PG2 b)")
    (QCheck.pair cfg.gen_state cfg.gen_b)
    (fun (s, b) ->
      let a, s' = u.Concrete.put_ba b s in
      cfg.eq_b (u.Concrete.p_get_b s') b && cfg.eq_a (u.Concrete.p_get_a s') a)

let put_well_behaved cfg u : QCheck.Test.t list =
  [ put_gp_a cfg u; put_gp_b cfg u; put_pg_a cfg u; put_pg_b cfg u ]
