(** Observational equivalence of entangled state monads — the other open
    problem the paper's conclusions raise.

    Two packed set-bx (possibly with different hidden state types) are
    observationally equivalent when every program of get/set operations
    yields the same observations from their initial states; testing over
    generated programs approximates bisimulation of reachable states. *)

val agree_on :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) Program.op list -> bool
(** Do the two bx produce the same observations on this program? *)

val gen_ops :
  ?max_length:int ->
  'a QCheck.arbitrary ->
  'b QCheck.arbitrary ->
  ('a, 'b) Program.op list QCheck.arbitrary
(** Generator of programs over the given value generators. *)

val test :
  ?count:int ->
  ?max_length:int ->
  name:string ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) Concrete.packed ->
  QCheck.Test.t
(** QCheck test asserting observational equivalence. *)

val equivalent_on :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b) Program.op list list -> bool
(** One-shot boolean check over explicitly supplied programs. *)
