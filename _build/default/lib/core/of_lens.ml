(** Lemma 4: every well-behaved asymmetric lens [l : A <-> B] induces a
    set-bx between [A] and [B] over the state monad on [A]:

    {v
    get_a   = fun a -> (a, a)              -- the identity-lens cell
    get_b   = fun a -> (l.get a, a)        -- the view cell
    set_a a' = fun _ -> ((), a')
    set_b b' = fun a -> ((), l.put a b')
    v}

    The two cells read and write the {e same} underlying state — they are
    entangled exactly as Section 2 of the paper describes.  If [l] is very
    well-behaved (PutPut), the induced set-bx is overwriteable. *)

module Make (X : sig
  type s
  type v

  val lens : (s, v) Esm_lens.Lens.t
  val equal_s : s -> s -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.s
       and type b = X.v
       and type state = X.s
       and type 'x result = 'x * X.s
end = struct
  type a = X.s
  type b = X.v
  type state = X.s

  module St = Esm_monad.State.Make (struct
    type t = X.s
  end)

  include (St : Esm_monad.Monad_intf.S with type 'x t = 'x St.t)

  type 'x result = 'x * state

  let run = St.run

  let equal_result eq (x1, s1) (x2, s2) = eq x1 x2 && X.equal_s s1 s2

  let get_a : a t = St.get
  let get_b : b t = St.gets (Esm_lens.Lens.get X.lens)
  let set_a (a : a) : unit t = St.set a
  let set_b (v : b) : unit t = St.modify (fun s -> Esm_lens.Lens.put X.lens s v)
end
