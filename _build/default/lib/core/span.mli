(** Spans of asymmetric lenses as entangled state monads: a common source
    with a lens onto each leg.  Generalises the paper's Lemma 4
    ({!Of_lens} is the identity-legged span).  If both legs are
    well-behaved the span is a lawful set-bx; very well-behaved legs give
    an overwriteable one.  Overlapping legs entangle the views; disjoint
    legs recover §3.4 commutation. *)

type ('a, 'b, 's) t = {
  left : ('s, 'a) Esm_lens.Lens.t;
  right : ('s, 'b) Esm_lens.Lens.t;
}

val v :
  left:('s, 'a) Esm_lens.Lens.t ->
  right:('s, 'b) Esm_lens.Lens.t ->
  ('a, 'b, 's) t

val to_set_bx : ('a, 'b, 's) t -> ('a, 'b, 's) Concrete.set_bx
(** The induced concrete set-bx over the shared source. *)

val of_lens : ('s, 'v) Esm_lens.Lens.t -> ('s, 'v, 's) t
(** Lemma 4 as a degenerate span: identity left leg. *)

val flip : ('a, 'b, 's) t -> ('b, 'a, 's) t

val re_root : ('t, 's) Esm_lens.Lens.t -> ('a, 'b, 's) t -> ('a, 'b, 't) t
(** Pre-compose both legs with a lens into the source. *)

val tensor :
  ('a1, 'b1, 't1) t -> ('a2, 'b2, 't2) t ->
  ('a1 * 'a2, 'b1 * 'b2, 't1 * 't2) t

(** The functor form, for the monadic law suites. *)
module Make (X : sig
  type a
  type b
  type s

  val span : (a, b, s) t
  val equal_s : s -> s -> bool
end) : sig
  include
    Bx_intf.STATEFUL_SET_BX
      with type a = X.a
       and type b = X.b
       and type state = X.s
       and type 'x result = 'x * X.s
end
