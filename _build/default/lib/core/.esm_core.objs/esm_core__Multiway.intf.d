lib/core/multiway.mli: Concrete
