lib/core/minimize.mli: Concrete
