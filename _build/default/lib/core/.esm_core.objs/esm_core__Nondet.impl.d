lib/core/nondet.ml: Bx_intf Esm_monad List
