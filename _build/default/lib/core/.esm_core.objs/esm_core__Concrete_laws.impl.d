lib/core/concrete_laws.ml: Concrete QCheck
