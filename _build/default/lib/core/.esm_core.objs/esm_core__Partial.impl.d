lib/core/partial.ml: Bx_intf Concrete Esm_monad Result Stdlib String
