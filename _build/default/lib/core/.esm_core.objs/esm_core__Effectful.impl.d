lib/core/effectful.ml: Bx_intf Concrete Esm_laws Esm_monad Fun Int
