lib/core/journal.ml: Concrete Esm_laws List
