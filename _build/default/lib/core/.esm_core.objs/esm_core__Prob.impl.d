lib/core/prob.ml: Bx_intf Esm_monad Float List
