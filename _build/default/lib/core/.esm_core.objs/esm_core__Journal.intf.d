lib/core/journal.mli: Concrete
