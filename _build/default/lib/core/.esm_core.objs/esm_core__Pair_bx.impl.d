lib/core/pair_bx.ml: Bx_intf Esm_monad
