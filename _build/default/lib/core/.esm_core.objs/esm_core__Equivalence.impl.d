lib/core/equivalence.ml: Concrete Gen List Program QCheck
