lib/core/span.mli: Bx_intf Concrete Esm_lens
