lib/core/multiway.ml: Concrete
