lib/core/command.ml: Concrete
