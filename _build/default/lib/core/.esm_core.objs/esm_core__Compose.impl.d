lib/core/compose.ml: Concrete Fun
