lib/core/concrete.mli: Esm_algbx Esm_lens Esm_symlens
