lib/core/command.mli: Concrete
