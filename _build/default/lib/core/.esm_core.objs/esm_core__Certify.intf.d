lib/core/certify.mli: Concrete Format
