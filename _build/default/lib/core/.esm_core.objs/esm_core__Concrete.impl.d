lib/core/concrete.ml: Esm_algbx Esm_lens Esm_symlens Fun
