lib/core/certify.ml: Concrete Format List
