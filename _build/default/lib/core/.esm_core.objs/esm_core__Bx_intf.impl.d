lib/core/bx_intf.ml: Esm_monad Monad_intf
