lib/core/minimize.ml: Array Concrete Int List Queue
