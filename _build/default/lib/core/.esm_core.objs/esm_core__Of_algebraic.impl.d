lib/core/of_algebraic.ml: Bx_intf Esm_algbx Esm_monad
