lib/core/of_symmetric.ml: Bx_intf Esm_monad Esm_symlens
