lib/core/bx_laws.ml: Bx_intf Esm_laws QCheck
