lib/core/program.ml: Concrete Format List
