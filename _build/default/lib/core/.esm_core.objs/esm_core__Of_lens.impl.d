lib/core/of_lens.ml: Bx_intf Esm_lens Esm_monad
