lib/core/equivalence.mli: Concrete Program QCheck
