lib/core/span.ml: Bx_intf Concrete Esm_lens Esm_monad Printf
