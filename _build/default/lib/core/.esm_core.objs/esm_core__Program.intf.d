lib/core/program.mli: Concrete Format
