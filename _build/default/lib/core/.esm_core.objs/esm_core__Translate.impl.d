lib/core/translate.ml: Bx_intf
