lib/core/compose.mli: Concrete
