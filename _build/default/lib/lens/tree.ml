(** Named-edge trees and tree lenses, after Foster et al.'s "Combinators
    for bidirectional tree transformations" — reference [1] of the paper
    and the origin of the asymmetric lenses it builds on.

    A tree is a finite, ordered list of edges, each labelled with a string
    and leading to a subtree.  Scalar values are encoded, as in the
    original paper, as a single edge with no children: [value "x"] is the
    tree [{"x" -> {}}]. *)

type t = Node of (string * t) list

let empty = Node []
let node edges = Node edges
let edges (Node es) = es

(** Encode a scalar value. *)
let value (s : string) : t = Node [ (s, empty) ]

(** Decode a scalar value; raises {!Lens.Shape_error} on non-value trees. *)
let to_value : t -> string = function
  | Node [ (s, Node []) ] -> s
  | Node _ -> Lens.shape_errorf "Tree.to_value: not a value tree"

let rec equal (Node es1) (Node es2) =
  List.length es1 = List.length es2
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2)
       es1 es2

let rec pp fmt (Node es) =
  match es with
  | [] -> Format.fprintf fmt "{}"
  | _ ->
      Format.fprintf fmt "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           (fun fmt (n, t) ->
             match t with
             | Node [] -> Format.fprintf fmt "%s" n
             | _ -> Format.fprintf fmt "%s -> %a" n pp t))
        es

let to_string t = Format.asprintf "%a" pp t

let lookup name (Node es) : t option =
  Option.map snd (List.find_opt (fun (n, _) -> String.equal n name) es)

(** Replace or add the binding for [name]. *)
let bind_edge name subtree (Node es) : t =
  let rec go = function
    | [] -> [ (name, subtree) ]
    | (n, _) :: rest when String.equal n name -> (name, subtree) :: rest
    | e :: rest -> e :: go rest
  in
  Node (go es)

let remove_edge name (Node es) : t =
  Node (List.filter (fun (n, _) -> not (String.equal n name)) es)

let size t =
  let rec go acc (Node es) =
    List.fold_left (fun acc (_, child) -> go (acc + 1) child) acc es
  in
  go 1 t

(* ------------------------------------------------------------------ *)
(* Tree lenses.  All are (very) well-behaved on their documented source
   and view domains; outside them, Shape_error is raised.               *)
(* ------------------------------------------------------------------ *)

(** [hoist n]: the source must be exactly [{n -> t}]; the view is [t].
    Inverse of {!plunge}. *)
let hoist (n : string) : (t, t) Lens.t =
  Lens.v ~name:(Printf.sprintf "hoist %s" n)
    ~get:(function
      | Node [ (m, child) ] when String.equal m n -> child
      | tree ->
          Lens.shape_errorf "hoist %s: source %s is not a singleton %s-edge"
            n (to_string tree) n)
    ~put:(fun _ view -> Node [ (n, view) ])
    ()

(** [plunge n]: the view of [t] is [{n -> t}].  Inverse of {!hoist}. *)
let plunge (n : string) : (t, t) Lens.t =
  Lens.v ~name:(Printf.sprintf "plunge %s" n)
    ~get:(fun tree -> Node [ (n, tree) ])
    ~put:(fun _ -> function
      | Node [ (m, child) ] when String.equal m n -> child
      | view ->
          Lens.shape_errorf "plunge %s: view %s is not a singleton %s-edge" n
            (to_string view) n)
    ()

(** [rename m n] renames the outermost edge [m] to [n] (which must exist
    and [n] must not). *)
let rename (m : string) (n : string) : (t, t) Lens.t =
  let swap_edge from_ to_ tree =
    match lookup from_ tree with
    | None ->
        Lens.shape_errorf "rename %s %s: no %s edge in %s" m n from_
          (to_string tree)
    | Some _ ->
        if Option.is_some (lookup to_ tree) then
          Lens.shape_errorf "rename %s %s: %s already present" m n to_
        else
          Node
            (List.map
               (fun (k, v) ->
                 if String.equal k from_ then (to_, v) else (k, v))
               (edges tree))
  in
  Lens.v ~name:(Printf.sprintf "rename %s %s" m n)
    ~get:(swap_edge m n)
    ~put:(fun _ view -> swap_edge n m view)
    ()

(** [focus n ~default]: view the subtree under edge [n], forgetting the
    rest of the tree; [put] restores the siblings from the old source (or
    from [default] when putting into a source lacking the edge). *)
let focus (n : string) ~(default : t) : (t, t) Lens.t =
  Lens.v ~name:(Printf.sprintf "focus %s" n)
    ~get:(fun tree ->
      match lookup n tree with
      | Some child -> child
      | None ->
          Lens.shape_errorf "focus %s: no such edge in %s" n (to_string tree))
    ~put:(fun source view ->
      let base =
        match lookup n source with Some _ -> source | None -> default
      in
      bind_edge n view base)
    ()

(** [prune n ~default]: the view is the source with edge [n] deleted;
    [put] restores [n] from the old source, or from [default] when the
    source lacks it.  Well-behaved on views without an [n] edge. *)
let prune (n : string) ~(default : t) : (t, t) Lens.t =
  Lens.v ~name:(Printf.sprintf "prune %s" n)
    ~get:(remove_edge n)
    ~put:(fun source view ->
      if Option.is_some (lookup n view) then
        Lens.shape_errorf "prune %s: view already has the pruned edge" n;
      let restored =
        match lookup n source with Some child -> child | None -> default
      in
      (* Re-insert at the position the edge had in the source, so that
         put (get s) restores s exactly; append when the source lacked
         the edge. *)
      let (Node ses) = source in
      let position =
        let rec find i = function
          | [] -> None
          | (m, _) :: _ when String.equal m n -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 ses
      in
      let (Node ves) = view in
      let insert_at i =
        let rec go i = function
          | rest when i = 0 -> (n, restored) :: rest
          | [] -> [ (n, restored) ]
          | e :: rest -> e :: go (i - 1) rest
        in
        go i ves
      in
      match position with
      | Some i -> Node (insert_at (min i (List.length ves)))
      | None -> Node (ves @ [ (n, restored) ]))
    ()

(** [map l] applies the lens [l] to every immediate subtree, keeping edge
    names.  [put] requires the view to bind exactly the same names in the
    same order. *)
let map (l : (t, t) Lens.t) : (t, t) Lens.t =
  Lens.v ~name:("map " ^ Lens.name l)
    ~get:(fun (Node es) -> Node (List.map (fun (n, c) -> (n, Lens.get l c)) es))
    ~put:(fun (Node ses) (Node ves) ->
      if
        List.length ses <> List.length ves
        || not
             (List.for_all2 (fun (n1, _) (n2, _) -> String.equal n1 n2) ses
                ves)
      then Lens.shape_errorf "map: view edges do not match source edges";
      Node
        (List.map2 (fun (n, s) (_, v) -> (n, Lens.put l s v)) ses ves))
    ()

(** [at n l] applies lens [l] to the subtree under edge [n], leaving the
    rest of the tree untouched.  Both [get] and [put] require the edge to
    be present.  Preserves (very) well-behavedness of [l]. *)
let at (n : string) (l : (t, t) Lens.t) : (t, t) Lens.t =
  let subtree label tree =
    match lookup label tree with
    | Some child -> child
    | None ->
        Lens.shape_errorf "at %s: no such edge in %s" label (to_string tree)
  in
  Lens.v
    ~name:(Printf.sprintf "at %s (%s)" n (Lens.name l))
    ~get:(fun tree -> bind_edge n (Lens.get l (subtree n tree)) tree)
    ~put:(fun source view ->
      let old_child = subtree n source in
      let new_child = Lens.put l old_child (subtree n view) in
      (* The rest of the view replaces the rest of the source. *)
      bind_edge n new_child view)
    ()
