(** Asymmetric lenses (Foster et al., TOPLAS 2007), as used in Section 2 of
    the paper: a lens [l] between source ['s] and view ['v] is a pair of
    functions [get : 's -> 'v] and [put : 's -> 'v -> 's].

    A lens is {e well-behaved} when

    - (GetPut) [put s (get s) = s]
    - (PutGet) [get (put s v) = v]

    and {e very well-behaved} when additionally

    - (PutPut) [put (put s v) v' = put s v']

    Lemma 4 of the paper turns any well-behaved lens into a set-bx over
    state ['s] (see {!Esm_core.Of_lens}); very-well-behaved lenses give
    overwriteable set-bx.

    Some combinators ([const], [assoc], tree lenses) are partial: their
    [get] or [put] raises {!Shape_error} outside the intended source/view
    domains.  Their laws hold on the documented domains, and the law
    checkers in {!Lens_laws} are instantiated with generators that respect
    those domains. *)

exception Shape_error of string
(** Raised by partial lenses applied outside their domain. *)

let shape_errorf fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

type ('s, 'v) t = {
  name : string;
  get : 's -> 'v;
  put : 's -> 'v -> 's;
}

let v ?(name = "<lens>") ~get ~put () = { name; get; put }
let name l = l.name
let get l s = l.get s
let put l s v = l.put s v

(** [update l f s] modifies the view through the lens: a get-modify-put
    round trip. *)
let update l f s = l.put s (f (l.get s))

(** Rename a lens (for diagnostics). *)
let with_name name l = { l with name }

(* ------------------------------------------------------------------ *)
(* Primitive combinators                                               *)
(* ------------------------------------------------------------------ *)

(** The identity lens between ['s] and ['s]: [get] reads the state and
    [put] replaces it.  The paper uses it to exhibit the ordinary state
    monad as the lens-induced one (Section 2). *)
let id : ('s, 's) t = { name = "id"; get = Fun.id; put = (fun _ v -> v) }

(** [compose outer inner] focuses through [outer] then [inner]:
    [s --outer--> u --inner--> v].  Preserves (very) well-behavedness. *)
let compose (outer : ('s, 'u) t) (inner : ('u, 'v) t) : ('s, 'v) t =
  {
    name = outer.name ^ " ; " ^ inner.name;
    get = (fun s -> inner.get (outer.get s));
    put = (fun s v -> outer.put s (inner.put (outer.get s) v));
  }

(** Infix [compose]. *)
let ( // ) = compose

(** View the first component of a pair. *)
let fst_lens : ('a * 'b, 'a) t =
  { name = "fst"; get = fst; put = (fun (_, b) a -> (a, b)) }

(** View the second component of a pair. *)
let snd_lens : ('a * 'b, 'b) t =
  { name = "snd"; get = snd; put = (fun (a, _) b -> (a, b)) }

(** Apply two lenses in parallel to the components of a pair. *)
let pair (l1 : ('s1, 'v1) t) (l2 : ('s2, 'v2) t) : ('s1 * 's2, 'v1 * 'v2) t =
  {
    name = Printf.sprintf "(%s * %s)" l1.name l2.name;
    get = (fun (s1, s2) -> (l1.get s1, l2.get s2));
    put = (fun (s1, s2) (v1, v2) -> (l1.put s1 v1, l2.put s2 v2));
  }

(** A lens from a bijection.  Well-behaved (indeed very well-behaved) iff
    [fwd] and [bwd] are mutually inverse. *)
let of_iso ?(name = "iso") (fwd : 's -> 'v) (bwd : 'v -> 's) : ('s, 'v) t =
  { name; get = fwd; put = (fun _ v -> bwd v) }

(** The constant lens: the view is always [v0]; [put] only accepts [v0]
    back (anything else raises {!Shape_error}).  Well-behaved on the view
    domain [{v0}]. *)
let const ?(eq = ( = )) ~(pp : 'v -> string) (v0 : 'v) : ('s, 'v) t =
  {
    name = "const";
    get = (fun _ -> v0);
    put =
      (fun s v ->
        if eq v v0 then s
        else shape_errorf "const lens: cannot put view %s" (pp v));
  }

(** Swap the components of a pair (an iso lens). *)
let swap : ('a * 'b, 'b * 'a) t =
  {
    name = "swap";
    get = (fun (a, b) -> (b, a));
    put = (fun _ (b, a) -> (a, b));
  }

(* ------------------------------------------------------------------ *)
(* Container lenses                                                    *)
(* ------------------------------------------------------------------ *)

(** Focus the value bound to [key] in an association list.  [get] raises
    {!Shape_error} if the key is absent; [put] replaces the first binding,
    or appends one if absent.  Well-behaved on sources containing the key
    exactly once. *)
let assoc ?(eq_key = ( = )) ~(pp_key : 'k -> string) (key : 'k) :
    (('k * 'v) list, 'v) t =
  let get s =
    match List.find_opt (fun (k, _) -> eq_key k key) s with
    | Some (_, v) -> v
    | None -> shape_errorf "assoc lens: key %s not found" (pp_key key)
  in
  let put s v =
    let rec replace = function
      | [] -> [ (key, v) ]
      | (k, _) :: rest when eq_key k key -> (key, v) :: rest
      | binding :: rest -> binding :: replace rest
    in
    replace s
  in
  { name = "assoc"; get; put }

(** Focus the head of a list.  [put] on an empty source creates a
    singleton.  Well-behaved on non-empty sources. *)
let head : ('a list, 'a) t =
  {
    name = "head";
    get =
      (function
      | x :: _ -> x
      | [] -> shape_errorf "head lens: empty list");
    put = (fun s v -> match s with _ :: rest -> v :: rest | [] -> [ v ]);
  }

(** Map a lens over a list, pointwise.  When the new view is longer than
    the source, fresh source elements are created with [create]; when
    shorter, trailing source elements are dropped.  Very well-behaved when
    the underlying lens is and [create] inverts [get] on fresh views. *)
let list_map ~(create : 'v -> 's) (l : ('s, 'v) t) : ('s list, 'v list) t =
  let rec put_list sources views =
    match (sources, views) with
    | _, [] -> []
    | [], v :: vs -> create v :: put_list [] vs
    | s :: ss, v :: vs -> l.put s v :: put_list ss vs
  in
  {
    name = "list_map " ^ l.name;
    get = List.map l.get;
    put = put_list;
  }

(** Filter lens: the view is the sublist of elements satisfying [keep].
    [put] splices the updated view back among the non-kept elements,
    preserving their positions; surplus view elements are appended, and
    missing ones cause the corresponding kept elements to be dropped.
    Well-behaved on views whose elements all satisfy [keep]; [put] raises
    {!Shape_error} otherwise. *)
let filter ~(keep : 'a -> bool) : ('a list, 'a list) t =
  let get s = List.filter keep s in
  let put s view =
    List.iter
      (fun v ->
        if not (keep v) then
          shape_errorf "filter lens: view element fails the predicate")
      view;
    let rec splice source view =
      match (source, view) with
      | [], view -> view
      | x :: rest, view when not (keep x) -> x :: splice rest view
      | _ :: rest, [] -> splice rest []
      | _ :: rest, v :: vs -> v :: splice rest vs
    in
    splice s view
  in
  { name = "filter"; get; put }

(* ------------------------------------------------------------------ *)
(* Law predicates (pointwise; see Lens_laws for the QCheck suites)     *)
(* ------------------------------------------------------------------ *)

let get_put_at ~eq_s (l : ('s, 'v) t) (s : 's) : bool = eq_s (l.put s (l.get s)) s

let put_get_at ~eq_v (l : ('s, 'v) t) (s : 's) (v : 'v) : bool =
  eq_v (l.get (l.put s v)) v

let put_put_at ~eq_s (l : ('s, 'v) t) (s : 's) (v : 'v) (v' : 'v) : bool =
  eq_s (l.put (l.put s v) v') (l.put s v')
