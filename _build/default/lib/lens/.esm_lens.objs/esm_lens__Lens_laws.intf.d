lib/lens/lens_laws.mli: Esm_laws Lens QCheck
