lib/lens/lens.ml: Format Fun List Printf
