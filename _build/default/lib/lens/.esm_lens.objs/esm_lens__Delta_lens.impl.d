lib/lens/delta_lens.ml: Lens List
