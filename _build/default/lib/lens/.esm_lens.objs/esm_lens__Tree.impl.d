lib/lens/tree.ml: Format Lens List Option Printf String
