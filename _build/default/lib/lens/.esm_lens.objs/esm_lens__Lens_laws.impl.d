lib/lens/lens_laws.ml: Esm_laws Lens QCheck
