lib/lens/config_lens.ml: Lens List String
