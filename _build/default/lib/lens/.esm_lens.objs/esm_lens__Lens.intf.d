lib/lens/lens.mli: Format
