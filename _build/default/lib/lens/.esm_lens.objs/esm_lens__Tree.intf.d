lib/lens/tree.mli: Format Lens
