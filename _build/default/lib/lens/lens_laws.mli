(** QCheck law suites for asymmetric lenses: (GetPut), (PutGet),
    (PutPut).  Generators must respect the documented domain of partial
    lenses. *)

val default_count : int

val get_put :
  ?count:int ->
  name:string ->
  ('s, 'v) Lens.t ->
  gen_s:'s QCheck.arbitrary ->
  eq_s:'s Esm_laws.Equality.t ->
  QCheck.Test.t

val put_get :
  ?count:int ->
  name:string ->
  ('s, 'v) Lens.t ->
  gen_s:'s QCheck.arbitrary ->
  gen_v:'v QCheck.arbitrary ->
  eq_v:'v Esm_laws.Equality.t ->
  QCheck.Test.t

val put_put :
  ?count:int ->
  name:string ->
  ('s, 'v) Lens.t ->
  gen_s:'s QCheck.arbitrary ->
  gen_v:'v QCheck.arbitrary ->
  eq_s:'s Esm_laws.Equality.t ->
  QCheck.Test.t

val well_behaved :
  ?count:int ->
  name:string ->
  ('s, 'v) Lens.t ->
  gen_s:'s QCheck.arbitrary ->
  gen_v:'v QCheck.arbitrary ->
  eq_s:'s Esm_laws.Equality.t ->
  eq_v:'v Esm_laws.Equality.t ->
  QCheck.Test.t list
(** (GetPut) + (PutGet). *)

val very_well_behaved :
  ?count:int ->
  name:string ->
  ('s, 'v) Lens.t ->
  gen_s:'s QCheck.arbitrary ->
  gen_v:'v QCheck.arbitrary ->
  eq_s:'s Esm_laws.Equality.t ->
  eq_v:'v Esm_laws.Equality.t ->
  QCheck.Test.t list
(** (GetPut) + (PutGet) + (PutPut). *)
