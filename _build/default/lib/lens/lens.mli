(** Asymmetric lenses (Foster et al., TOPLAS 2007), as used in Section 2
    of the paper: a lens between source ['s] and view ['v] is a pair of
    functions [get : 's -> 'v] and [put : 's -> 'v -> 's].

    A lens is {e well-behaved} when

    - (GetPut) [put s (get s) = s]
    - (PutGet) [get (put s v) = v]

    and {e very well-behaved} when additionally

    - (PutPut) [put (put s v) v' = put s v'].

    Lemma 4 of the paper turns any well-behaved lens into a set-bx over
    state ['s] (see {!Esm_core.Of_lens}); very-well-behaved lenses give
    overwriteable set-bx.

    Some combinators ([const], [assoc], tree lenses) are partial: their
    [get] or [put] raises {!Shape_error} outside the documented source or
    view domains.  Their laws hold on those domains, and the law checkers
    in {!Lens_laws} are instantiated with generators that respect them. *)

exception Shape_error of string
(** Raised by partial lenses applied outside their domain. *)

val shape_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Shape_error} with a formatted message. *)

type ('s, 'v) t = {
  name : string;  (** diagnostic name, e.g. ["fst ; head"] *)
  get : 's -> 'v;
  put : 's -> 'v -> 's;
}

val v :
  ?name:string -> get:('s -> 'v) -> put:('s -> 'v -> 's) -> unit -> ('s, 'v) t
(** Build a lens from its two components. *)

val name : ('s, 'v) t -> string
val get : ('s, 'v) t -> 's -> 'v
val put : ('s, 'v) t -> 's -> 'v -> 's

val update : ('s, 'v) t -> ('v -> 'v) -> 's -> 's
(** [update l f s] modifies the view through the lens: a get-modify-put
    round trip. *)

val with_name : string -> ('s, 'v) t -> ('s, 'v) t
(** Rename a lens (for diagnostics). *)

(** {1 Primitive combinators} *)

val id : ('s, 's) t
(** The identity lens: [get] reads the state, [put] replaces it.  The
    paper uses it to exhibit the ordinary state monad as the lens-induced
    one (Section 2). *)

val compose : ('s, 'u) t -> ('u, 'v) t -> ('s, 'v) t
(** [compose outer inner] focuses through [outer] then [inner].
    Preserves (very) well-behavedness. *)

val ( // ) : ('s, 'u) t -> ('u, 'v) t -> ('s, 'v) t
(** Infix {!compose}. *)

val fst_lens : ('a * 'b, 'a) t
(** View the first component of a pair. *)

val snd_lens : ('a * 'b, 'b) t
(** View the second component of a pair. *)

val pair : ('s1, 'v1) t -> ('s2, 'v2) t -> ('s1 * 's2, 'v1 * 'v2) t
(** Apply two lenses in parallel to the components of a pair. *)

val of_iso : ?name:string -> ('s -> 'v) -> ('v -> 's) -> ('s, 'v) t
(** A lens from a bijection; very well-behaved iff the two functions are
    mutually inverse. *)

val const : ?eq:('v -> 'v -> bool) -> pp:('v -> string) -> 'v -> ('s, 'v) t
(** The constant lens: the view is always the given value; [put] accepts
    only that value back (anything else raises {!Shape_error}).
    Well-behaved on the singleton view domain. *)

val swap : ('a * 'b, 'b * 'a) t
(** Swap the components of a pair (an iso lens). *)

(** {1 Container lenses} *)

val assoc :
  ?eq_key:('k -> 'k -> bool) -> pp_key:('k -> string) -> 'k ->
  (('k * 'v) list, 'v) t
(** Focus the value bound to a key in an association list.  [get] raises
    {!Shape_error} if the key is absent; [put] replaces the first
    binding, or appends one.  Well-behaved on sources containing the key
    exactly once. *)

val head : ('a list, 'a) t
(** Focus the head of a list; [put] on an empty source creates a
    singleton.  Well-behaved on non-empty sources. *)

val list_map : create:('v -> 's) -> ('s, 'v) t -> ('s list, 'v list) t
(** Map a lens over a list pointwise.  Longer views create fresh sources
    with [create]; shorter views drop trailing sources.  Well-behaved;
    (PutPut) additionally requires equal-length successive views. *)

val filter : keep:('a -> bool) -> ('a list, 'a list) t
(** The view is the sublist satisfying [keep]; [put] splices the updated
    view back among the non-kept elements.  Well-behaved on views whose
    elements all satisfy [keep] ([put] raises {!Shape_error} otherwise). *)

(** {1 Pointwise law predicates}

    One-sample checks used by the QCheck suites in {!Lens_laws} and
    directly by tests that exhibit specific (counter)examples. *)

val get_put_at : eq_s:('s -> 's -> bool) -> ('s, 'v) t -> 's -> bool
val put_get_at : eq_v:('v -> 'v -> bool) -> ('s, 'v) t -> 's -> 'v -> bool

val put_put_at :
  eq_s:('s -> 's -> bool) -> ('s, 'v) t -> 's -> 'v -> 'v -> bool
