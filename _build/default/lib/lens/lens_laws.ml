(** QCheck law suites for asymmetric lenses: (GetPut), (PutGet), (PutPut).
    Generators must respect the documented domain of partial lenses. *)

let default_count = 500

let get_put ?(count = default_count) ~name (l : ('s, 'v) Lens.t)
    ~(gen_s : 's QCheck.arbitrary) ~(eq_s : 's Esm_laws.Equality.t) :
    QCheck.Test.t =
  QCheck.Test.make ~count ~name:(name ^ " (GetPut)") gen_s (fun s ->
      Lens.get_put_at ~eq_s l s)

let put_get ?(count = default_count) ~name (l : ('s, 'v) Lens.t)
    ~(gen_s : 's QCheck.arbitrary) ~(gen_v : 'v QCheck.arbitrary)
    ~(eq_v : 'v Esm_laws.Equality.t) : QCheck.Test.t =
  QCheck.Test.make ~count ~name:(name ^ " (PutGet)")
    (QCheck.pair gen_s gen_v)
    (fun (s, v) -> Lens.put_get_at ~eq_v l s v)

let put_put ?(count = default_count) ~name (l : ('s, 'v) Lens.t)
    ~(gen_s : 's QCheck.arbitrary) ~(gen_v : 'v QCheck.arbitrary)
    ~(eq_s : 's Esm_laws.Equality.t) : QCheck.Test.t =
  QCheck.Test.make ~count ~name:(name ^ " (PutPut)")
    (QCheck.triple gen_s gen_v gen_v)
    (fun (s, v, v') -> Lens.put_put_at ~eq_s l s v v')

(** (GetPut) + (PutGet). *)
let well_behaved ?count ~name l ~gen_s ~gen_v ~eq_s ~eq_v :
    QCheck.Test.t list =
  [
    get_put ?count ~name l ~gen_s ~eq_s;
    put_get ?count ~name l ~gen_s ~gen_v ~eq_v;
  ]

(** (GetPut) + (PutGet) + (PutPut). *)
let very_well_behaved ?count ~name l ~gen_s ~gen_v ~eq_s ~eq_v :
    QCheck.Test.t list =
  well_behaved ?count ~name l ~gen_s ~gen_v ~eq_s ~eq_v
  @ [ put_put ?count ~name l ~gen_s ~gen_v ~eq_s ]
