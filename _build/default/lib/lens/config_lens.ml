(** A textual configuration-file lens, Boomerang/Augeas style: the source
    is the raw text of a [key = value] config file (comments, blank lines
    and per-line layout included); the view is just the list of bindings.
    Editing the view and putting it back rewrites only the affected
    values, preserving every comment and all untouched layout — the
    "linguistic approach to the view-update problem" of the paper's
    reference [1], on the file format everyone actually has.

    Concretely a source line is one of

    - a comment (first non-blank character ['#'] or [';']), kept verbatim;
    - a blank line, kept verbatim;
    - a binding [<indent>key<ws>=<ws>value], whose layout (indent and
      whitespace around ['=']) is the line's complement.

    [put] policy, given the updated bindings list:

    - a binding line whose key is still present gets the (possibly new)
      value, keeping its layout; the FIRST occurrence of each view key
      consumes it, so duplicate keys update positionally;
    - a binding line whose key disappeared from the view is deleted;
    - view bindings left over are appended at the end as [key = value].

    Laws: on sources and views with distinct keys (the usual config-file
    discipline), (GetPut) holds exactly, and (PutGet) holds {e up to
    binding order}: the file's line order belongs to the source's layout,
    so the view is morally a finite map — compare views with an
    order-insensitive equality.  (Augeas has the same semantics.)
    Property-tested in [test/test_config_lens.ml], including a
    shuffled-view case. *)

type line =
  | Verbatim of string  (** comment or blank line *)
  | Binding of { indent : string; key : string; sep : string; value : string }
      (** [<indent><key><sep><value>] where [sep] contains the ['='] *)

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t') s

let parse_line (s : string) : line =
  let trimmed = String.trim s in
  if is_blank s then Verbatim s
  else if trimmed.[0] = '#' || trimmed.[0] = ';' then Verbatim s
  else
    match String.index_opt s '=' with
    | None -> Verbatim s (* not a binding: keep untouched *)
    | Some eq ->
        let raw_key = String.sub s 0 eq in
        let key = String.trim raw_key in
        if key = "" then Verbatim s
        else
          let indent_len =
            let rec go i =
              if i < String.length raw_key && (raw_key.[i] = ' ' || raw_key.[i] = '\t')
              then go (i + 1)
              else i
            in
            go 0
          in
          let indent = String.sub s 0 indent_len in
          let raw_value = String.sub s (eq + 1) (String.length s - eq - 1) in
          let value = String.trim raw_value in
          (* sep = everything between the trimmed key and trimmed value *)
          let key_end = indent_len + String.length key in
          let value_start =
            let rec go i =
              if
                i < String.length s
                && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '=')
              then go (i + 1)
              else i
            in
            go key_end
          in
          Binding
            {
              indent;
              key;
              sep = String.sub s key_end (value_start - key_end);
              value;
            }

let print_line = function
  | Verbatim s -> s
  | Binding { indent; key; sep; value } -> indent ^ key ^ sep ^ value

let parse_text (text : string) : line list =
  List.map parse_line (String.split_on_char '\n' text)

let print_text (lines : line list) : string =
  String.concat "\n" (List.map print_line lines)

(** The lens from config text to its bindings. *)
let bindings : (string, (string * string) list) Lens.t =
  let get text =
    List.filter_map
      (function
        | Binding { key; value; _ } -> Some (key, value)
        | Verbatim _ -> None)
      (parse_text text)
  in
  let put text view =
    let lines = parse_text text in
    (* Each view binding may be consumed once, in order, per key. *)
    let remaining = ref view in
    let consume key =
      let rec go acc = function
        | [] -> None
        | (k, v) :: rest when String.equal k key ->
            remaining := List.rev_append acc rest;
            Some v
        | kv :: rest -> go (kv :: acc) rest
      in
      go [] !remaining
    in
    let updated =
      List.filter_map
        (fun line ->
          match line with
          | Verbatim _ -> Some line
          | Binding b -> (
              match consume b.key with
              | Some value -> Some (Binding { b with value })
              | None -> None (* key deleted from the view *)))
        lines
    in
    let fresh =
      List.map
        (fun (key, value) ->
          Binding { indent = ""; key; sep = " = "; value })
        !remaining
    in
    (* Avoid stacking blank trailing lines when appending. *)
    let updated =
      match (fresh, List.rev updated) with
      | [], _ -> updated
      | _, Verbatim "" :: rev_rest -> List.rev rev_rest @ fresh @ [ Verbatim "" ]
      | _, _ -> updated @ fresh
    in
    print_text updated
  in
  Lens.v ~name:"config.bindings" ~get ~put ()

(** Focus one key's value (string option: [None] = absent).  Built by
    composing {!bindings} with an option-valued assoc lens. *)
let value_of (key : string) : (string, string option) Lens.t =
  let assoc_opt : ((string * string) list, string option) Lens.t =
    Lens.v ~name:("assoc? " ^ key)
      ~get:(fun kvs -> List.assoc_opt key kvs)
      ~put:(fun kvs -> function
        | None -> List.filter (fun (k, _) -> not (String.equal k key)) kvs
        | Some v ->
            if List.mem_assoc key kvs then
              List.map
                (fun (k, v0) -> if String.equal k key then (k, v) else (k, v0))
                kvs
            else kvs @ [ (key, v) ])
      ()
  in
  Lens.with_name ("config[" ^ key ^ "]") (Lens.compose bindings assoc_opt)
