(** Named-edge trees and tree lenses, after Foster et al.'s "Combinators
    for bidirectional tree transformations" — reference [1] of the paper.

    A tree is a finite, ordered list of edges, each labelled with a
    string and leading to a subtree.  Scalar values are encoded as a
    single childless edge: [value "x"] is [{"x" -> {}}].

    All lenses here are (very) well-behaved on their documented source
    and view domains; outside them {!Lens.Shape_error} is raised. *)

type t = Node of (string * t) list

val empty : t
val node : (string * t) list -> t

val edges : t -> (string * t) list

val value : string -> t
(** Encode a scalar value. *)

val to_value : t -> string
(** Decode a scalar value; raises {!Lens.Shape_error} on non-value
    trees. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val lookup : string -> t -> t option

val bind_edge : string -> t -> t -> t
(** Replace or add the binding for an edge name. *)

val remove_edge : string -> t -> t

val size : t -> int
(** Number of nodes (the root counts as one). *)

(** {1 Tree lenses} *)

val hoist : string -> (t, t) Lens.t
(** [hoist n]: the source must be exactly [{n -> t}]; the view is [t].
    Inverse of {!plunge}. *)

val plunge : string -> (t, t) Lens.t
(** [plunge n]: the view of [t] is [{n -> t}].  Inverse of {!hoist}. *)

val rename : string -> string -> (t, t) Lens.t
(** [rename m n] renames the outermost edge [m] to [n]; [m] must exist
    and [n] must not. *)

val focus : string -> default:t -> (t, t) Lens.t
(** [focus n ~default]: view the subtree under edge [n], forgetting the
    rest; [put] restores the siblings from the old source ([default]
    seeds sources lacking the edge). *)

val prune : string -> default:t -> (t, t) Lens.t
(** [prune n ~default]: the view is the source without edge [n]; [put]
    restores the edge (at its original position) from the old source.
    Well-behaved on sources containing the edge and views without it. *)

val map : (t, t) Lens.t -> (t, t) Lens.t
(** Apply a lens to every immediate subtree; the view must bind exactly
    the same edge names in the same order. *)

val at : string -> (t, t) Lens.t -> (t, t) Lens.t
(** [at n l] applies [l] to the subtree under edge [n] only; the edge
    must be present in both source and view. *)
