(** Derive the full monad API of {!Monad_intf.S} from a minimal
    {!Monad_intf.MONAD}.  Every concrete monad in this library is built by
    [include Extend.Make (struct ... end)]. *)

module Make (M : Monad_intf.MONAD) : Monad_intf.S with type 'a t = 'a M.t =
struct
  include M

  let map f ma = bind ma (fun a -> return (f a))
  let join mma = bind mma Fun.id
  let map2 f ma mb = bind ma (fun a -> bind mb (fun b -> return (f a b)))
  let product ma mb = map2 (fun a b -> (a, b)) ma mb
  let ignore_m ma = bind ma (fun _ -> return ())

  let map_m f xs =
    let cons_m x acc = bind (f x) (fun y -> bind acc (fun ys -> return (y :: ys))) in
    List.fold_right cons_m xs (return [])

  let sequence ms = map_m Fun.id ms

  let iter_m f xs =
    List.fold_left (fun acc x -> bind acc (fun () -> f x)) (return ()) xs

  let sequence_unit ms = iter_m Fun.id ms

  let fold_m f init xs =
    List.fold_left (fun acc x -> bind acc (fun a -> f a x)) (return init) xs

  let replicate_m n ma =
    let rec go n = if n <= 0 then return [] else map2 List.cons ma (go (n - 1)) in
    go n

  let when_m c ma = if c then ma else return ()
  let unless_m c ma = if c then return () else ma

  module Infix = struct
    let ( >>= ) = bind
    let ( >>| ) ma f = map f ma
    let ( >> ) ma mb = bind ma (fun _ -> mb)
    let ( <*> ) mf ma = map2 (fun f a -> f a) mf ma
  end

  module Syntax = struct
    let ( let* ) = bind
    let ( let+ ) ma f = map f ma
    let ( and+ ) = product
  end

  include Infix
end
