(** Module signatures for the monad hierarchy used throughout the library.

    The paper ("Entangled State Monads", BX 2014, Section 2) works with
    monads in the Haskell style: a type constructor [M] with [return] and
    [(>>=)] satisfying the three monad laws.  OCaml has no higher-kinded
    type variables, so we follow the standard encoding: a monad is a module
    matching {!module-type:MONAD}, and constructions parameterised by an
    arbitrary monad are functors over that signature. *)

(** A type constructor with a structure-preserving map. *)
module type FUNCTOR = sig
  type 'a t

  val map : ('a -> 'b) -> 'a t -> 'b t
  (** [map f x] applies [f] under the structure of [x].  Laws:
      [map Fun.id = Fun.id] and [map (g % f) = map g % map f]. *)
end

(** An applicative functor: pure embedding plus lifted application. *)
module type APPLICATIVE = sig
  include FUNCTOR

  val pure : 'a -> 'a t
  (** [pure a] is the effect-free computation returning [a]. *)

  val apply : ('a -> 'b) t -> 'a t -> 'b t
  (** [apply ff fa] runs [ff], then [fa], and applies the results. *)
end

(** The minimal monad interface; everything else is derived by {!Extend}. *)
module type MONAD = sig
  type 'a t

  val return : 'a -> 'a t
  (** [return a] yields [a] with no effect.  Left and right unit for
      {!bind}. *)

  val bind : 'a t -> ('a -> 'b t) -> 'b t
  (** [bind ma f] sequences [ma] before [f], feeding the produced value to
      [f].  Associative. *)
end

(** Monads with failure and (left-biased or nondeterministic) choice. *)
module type MONAD_PLUS = sig
  include MONAD

  val zero : unit -> 'a t
  (** The failing computation; unit for {!plus}. *)

  val plus : 'a t -> 'a t -> 'a t
  (** Alternative composition. *)
end

(** A monoid; used to parameterise {!module:Writer}. *)
module type MONOID = sig
  type t

  val empty : t
  val combine : t -> t -> t
end

(** Infix operators shared by every extended monad. *)
module type INFIX = sig
  type 'a t

  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
  (** Alias of [bind]. *)

  val ( >>| ) : 'a t -> ('a -> 'b) -> 'b t
  (** Map, postfix style. *)

  val ( >> ) : 'a t -> 'b t -> 'b t
  (** Sequencing that discards the first result: the paper's
      [ma >> mb = ma >>= fun _ -> mb]. *)

  val ( <*> ) : ('a -> 'b) t -> 'a t -> 'b t
  (** Applicative application. *)
end

(** [let]-operators for binding ([let*]) and mapping ([let+]/[and+]). *)
module type LET_SYNTAX = sig
  type 'a t

  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( and+ ) : 'a t -> 'b t -> ('a * 'b) t
end

(** The full derived monad API produced by {!Extend}. *)
module type S = sig
  include MONAD

  val map : ('a -> 'b) -> 'a t -> 'b t
  val join : 'a t t -> 'a t
  val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
  val product : 'a t -> 'b t -> ('a * 'b) t
  val ignore_m : 'a t -> unit t

  val sequence : 'a t list -> 'a list t
  (** Run computations left to right, collecting the results. *)

  val sequence_unit : unit t list -> unit t

  val map_m : ('a -> 'b t) -> 'a list -> 'b list t
  (** Effectful [List.map], left to right. *)

  val iter_m : ('a -> unit t) -> 'a list -> unit t

  val fold_m : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t
  (** Effectful left fold. *)

  val replicate_m : int -> 'a t -> 'a list t
  (** [replicate_m n ma] runs [ma] [n] times, collecting the results. *)

  val when_m : bool -> unit t -> unit t
  (** [when_m c ma] runs [ma] iff [c]; otherwise does nothing.  Used to
      express the paper's "only print when the state actually changes". *)

  val unless_m : bool -> unit t -> unit t

  module Infix : INFIX with type 'a t := 'a t
  module Syntax : LET_SYNTAX with type 'a t := 'a t

  include INFIX with type 'a t := 'a t
end

(** Extended monads that can [run] to a final observation; concrete state
    monads refine this further with their state type. *)
module type RUNNABLE = sig
  include S

  type 'a result

  val run : 'a t -> 'a result
end
