(** The state monad transformer: [StateT S M A = S -> M (A * S)].

    Section 4 of the paper builds its effectful bx over exactly this shape,
    [M A = Integer -> IO (A, Integer)]; here the inner monad is arbitrary,
    and {!Esm_core.Effectful} instantiates it with {!Io_sim}. *)

module Make
    (S : sig
      type t
    end)
    (M : Monad_intf.MONAD) =
struct
  type state = S.t
  type 'a inner = 'a M.t

  include Extend.Make (struct
    type 'a t = S.t -> ('a * S.t) M.t

    let return a s = M.return (a, s)

    let bind ma f s =
      M.bind (ma s) (fun (a, s') -> f a s')
  end)

  let get : state t = fun s -> M.return (s, s)
  let set (s' : state) : unit t = fun _ -> M.return ((), s')
  let gets (f : state -> 'a) : 'a t = fun s -> M.return (f s, s)
  let modify (f : state -> state) : unit t = fun s -> M.return ((), f s)

  let lift (ma : 'a M.t) : 'a t = fun s -> M.bind ma (fun a -> M.return (a, s))

  let run (ma : 'a t) (s : state) : ('a * state) M.t = ma s
end
