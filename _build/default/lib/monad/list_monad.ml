(** The list monad: finite nondeterminism.  The paper's Section 2 uses it
    as the introductory example of a monad ("non-deterministic computations
    ... as functions [A -> List B]"); Section 5 proposes nondeterminism as
    an effect to combine with bidirectionality. *)

include Extend.Make (struct
  type 'a t = 'a list

  let return a = [ a ]
  let bind ma f = List.concat_map f ma
end)

let zero () = []
let plus = ( @ )
let of_list xs = xs
let run xs = xs

(** All interleavings of choices from each list, i.e. the n-ary product. *)
let choices (xss : 'a list list) : 'a list t = sequence xss
