(** Simulated I/O: the pure substitute for the paper's Haskell [IO].

    Section 4 of the paper needs only [print : String -> IO ()] and monadic
    sequencing.  We model the world as an input queue plus an output trace,
    so that effectful bx become {e testable}: a test can assert exactly
    which messages were printed, and in what order — something opaque real
    I/O would not permit.  (See DESIGN.md, substitution table.) *)

type world = { input : string list; output : string list (* reversed *) }

let initial_world ?(input = []) () = { input; output = [] }

include Extend.Make (struct
  type 'a t = world -> 'a * world

  let return a w = (a, w)

  let bind ma f w =
    let a, w' = ma w in
    f a w'
end)

let print (msg : string) : unit t =
 fun w -> ((), { w with output = msg :: w.output })

let print_line (msg : string) : unit t = print (msg ^ "\n")

(** Consume the next line of input, if any. *)
let read_line : string option t =
 fun w ->
  match w.input with
  | [] -> (None, w)
  | line :: rest -> (Some line, { w with input = rest })

(** [run ?input ma] executes [ma] against a fresh world and returns its
    value together with the output trace in emission order. *)
let run ?input (ma : 'a t) : 'a * string list =
  let a, w = ma (initial_world ?input ()) in
  (a, List.rev w.output)

let trace ?input (ma : 'a t) : string list = snd (run ?input ma)
let value ?input (ma : 'a t) : 'a = fst (run ?input ma)
