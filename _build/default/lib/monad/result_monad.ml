(** The result (exception) monad, parameterised by the error type.
    Computations either succeed with a value or abort with an error. *)

module Make (E : sig
  type t
end) =
struct
  type error = E.t

  include Extend.Make (struct
    type 'a t = ('a, E.t) result

    let return a = Ok a
    let bind ma f = match ma with Error e -> Error e | Ok a -> f a
  end)

  let fail e = Error e
  let catch ma handler = match ma with Ok _ -> ma | Error e -> handler e
  let run ~ok ~error = function Ok a -> ok a | Error e -> error e
end

(** Errors as strings: the common instantiation used by the examples. *)
module String_error = Make (String)
