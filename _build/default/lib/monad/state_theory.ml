(** The algebraic theory of a single mutable cell, as a free monad.

    Section 2 of the paper recalls that a "state monad on [S]" can be taken
    abstractly to be any monad with [get]/[set] satisfying the four laws

    - (GG) [get >>= fun s -> get >>= fun s' -> k s s' = get >>= fun s -> k s s]
    - (GS) [get >>= set = return ()]
    - (SG) [set s >> get = set s >> return s]
    - (SS) [set s >> set s' = set s']

    Here we build the {e term algebra} of the theory — the free monad over
    the Get/Set signature — together with its interpretation into the
    concrete state monad [S -> A * S].  The four laws imply a normal-form
    theorem: every closed term is equal (in the theory) to
    [get >>= fun s -> set (next s) >> return (result s)] for some functions
    [next] and [result]; {!canonical} computes that normal form and tests
    confirm the term and its normal form are extensionally equal. *)

module Make (S : sig
  type t
end) =
struct
  type state = S.t

  (** The signature functor: one [Get] operation whose continuation
      receives the current state, and one [Set] carrying the new state. *)
  type 'k op = Get of (state -> 'k) | Set of state * 'k

  module F = struct
    type 'a t = 'a op

    let map f = function
      | Get k -> Get (fun s -> f (k s))
      | Set (s, k) -> Set (s, f k)
  end

  module Term = Free.Make (F)

  let get : state Term.t = Term.lift (Get Fun.id)
  let set (s : state) : unit Term.t = Term.lift (Set (s, ()))

  let gets (f : state -> 'a) : 'a Term.t = Term.bind get (fun s -> Term.return (f s))
  let modify (f : state -> state) : unit Term.t = Term.bind get (fun s -> set (f s))

  module St = State.Make (S)

  (** Interpretation into the concrete state monad — the unique
      theory-respecting homomorphism out of the term algebra. *)
  let rec denote : 'a. 'a Term.t -> 'a St.t =
    fun (type a) (m : a Term.t) (s : state) : (a * state) ->
     match m with
     | Term.Pure a -> (a, s)
     | Term.Impure (Get k) -> denote (k s) s
     | Term.Impure (Set (s', k)) -> denote k s'

  (** Number of Get/Set operations performed along the execution path from
      initial state [s]. *)
  let rec ops_performed (m : 'a Term.t) (s : state) : int =
    match m with
    | Term.Pure _ -> 0
    | Term.Impure (Get k) -> 1 + ops_performed (k s) s
    | Term.Impure (Set (s', k)) -> 1 + ops_performed k s'

  (** The normal form guaranteed by the four laws: one [get], one [set],
      one [return].  Extensionally equal to the input term. *)
  let canonical (m : 'a Term.t) : 'a Term.t =
    Term.bind get (fun s ->
        let a, s' = denote m s in
        Term.bind (set s') (fun () -> Term.return a))

  (** Extensional equality of two terms on the given sample states. *)
  let equal_on ~eq_a ~eq_state (states : state list) (m1 : 'a Term.t)
      (m2 : 'a Term.t) : bool =
    List.for_all
      (fun s ->
        let a1, s1 = denote m1 s in
        let a2, s2 = denote m2 s in
        eq_a a1 a2 && eq_state s1 s2)
      states
end
