(** The state monad [MS A = S -> A * S] of Section 2 of the paper, as a
    functor over the state type, with the canonical [get]/[set] operations
    satisfying the four laws (GG) (GS) (SG) (SS). *)

module Make (S : sig
  type t
end) =
struct
  type state = S.t

  include Extend.Make (struct
    type 'a t = S.t -> 'a * S.t

    let return a s = (a, s)

    let bind ma f s =
      let a, s' = ma s in
      f a s'
  end)

  let get : state t = fun s -> (s, s)
  let set (s' : state) : unit t = fun _ -> ((), s')
  let gets (f : state -> 'a) : 'a t = fun s -> (f s, s)
  let modify (f : state -> state) : unit t = fun s -> ((), f s)

  let run (ma : 'a t) (s : state) : 'a * state = ma s
  let eval (ma : 'a t) (s : state) : 'a = fst (ma s)
  let exec (ma : 'a t) (s : state) : state = snd (ma s)
end
