(** The writer monad over a monoid: computations that accumulate output.
    Used by {!Io_sim} (trace accumulation) and by the change-logging bx of
    Section 4 of the paper. *)

module Make (W : Monad_intf.MONOID) = struct
  type output = W.t

  include Extend.Make (struct
    type 'a t = 'a * W.t

    let return a = (a, W.empty)

    let bind (a, w) f =
      let b, w' = f a in
      (b, W.combine w w')
  end)

  let tell (w : output) : unit t = ((), w)
  let listen ((a, w) : 'a t) : ('a * output) t = ((a, w), w)
  let censor (f : output -> output) ((a, w) : 'a t) : 'a t = (a, f w)
  let run ((a, w) : 'a t) : 'a * output = (a, w)
end

(** Writer over lists (free monoid), the common case for traces. *)
module Trace = Make (struct
  type t = string list

  let empty = []
  let combine = ( @ )
end)
