lib/monad/identity.ml: Extend
