lib/monad/extend.ml: Fun List Monad_intf
