lib/monad/free.ml: Extend Monad_intf
