lib/monad/state_theory.ml: Free Fun List State
