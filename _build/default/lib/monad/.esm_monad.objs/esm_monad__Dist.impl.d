lib/monad/dist.ml: Extend Float List Monad_intf
