lib/monad/io_sim.mli: Monad_intf
