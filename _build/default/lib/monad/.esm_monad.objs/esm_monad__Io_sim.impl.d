lib/monad/io_sim.ml: Extend List
