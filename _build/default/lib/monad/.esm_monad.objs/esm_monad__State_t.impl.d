lib/monad/state_t.ml: Extend Monad_intf
