lib/monad/reader.ml: Extend Fun
