lib/monad/writer.ml: Extend Monad_intf
