lib/monad/option_monad.ml: Extend
