lib/monad/result_monad.ml: Extend String
