lib/monad/writer_t.ml: Extend Monad_intf
