lib/monad/monad_intf.ml:
