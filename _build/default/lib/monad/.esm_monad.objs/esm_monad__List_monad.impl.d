lib/monad/list_monad.ml: Extend List
