lib/monad/two_cell_theory.ml: Free Fun List
