lib/monad/state.ml: Extend
