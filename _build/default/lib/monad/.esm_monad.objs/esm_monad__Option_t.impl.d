lib/monad/option_t.ml: Extend Monad_intf
