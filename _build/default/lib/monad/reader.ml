(** The reader monad: computations with access to an immutable
    environment.  A state monad whose [set] has been removed; included for
    completeness of the hierarchy and used in tests as a contrast case
    (it satisfies (GG) but has no (GS)/(SG) structure). *)

module Make (Env : sig
  type t
end) =
struct
  type env = Env.t

  include Extend.Make (struct
    type 'a t = Env.t -> 'a

    let return a _ = a
    let bind ma f env = f (ma env) env
  end)

  let ask : env t = Fun.id
  let asks (f : env -> 'a) : 'a t = f
  let local (f : env -> env) (ma : 'a t) : 'a t = fun env -> ma (f env)
  let run (ma : 'a t) (env : env) : 'a = ma env
end
