(** The identity monad: pure values, no effects.  The degenerate point of
    the monad hierarchy; useful as the base of transformer stacks and as a
    sanity baseline in tests and benchmarks. *)

include Extend.Make (struct
  type 'a t = 'a

  let return a = a
  let bind a f = f a
end)

let run (a : 'a t) : 'a = a
