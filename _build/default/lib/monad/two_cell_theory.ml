(** The algebraic theory of TWO independent mutable cells.

    Section 2 of the paper notes that "one may characterise state monads
    with multiple memory cells in terms of an algebraic theory of reads
    and writes, with seven equations" (Plotkin–Power).  This module
    realises the two-cell case: the four single-cell laws per cell plus
    the three commutation laws

    - [get_a/get_b] commute,
    - [set_a/set_b] commute,
    - [set_a/get_b] (and [set_b/get_a]) commute.

    The {e independent} two-cell theory is exactly what an entangled
    state monad is {e not}: the paper's Section 3.4 observes that a
    set-bx drops the commutation equations, freeing [set_a] to disturb
    the B view.  Tests use this module to exhibit the boundary: free
    two-cell terms normalise to a read-both/write-both form
    ({!Make.canonical}), which is valid for {!Esm_core.Pair_bx} but
    unsound for entangled instances. *)

module Make (A : sig
  type t
end) (B : sig
  type t
end) =
struct
  type state = A.t * B.t

  type 'k op =
    | Get_a of (A.t -> 'k)
    | Set_a of A.t * 'k
    | Get_b of (B.t -> 'k)
    | Set_b of B.t * 'k

  module F = struct
    type 'x t = 'x op

    let map f = function
      | Get_a k -> Get_a (fun a -> f (k a))
      | Set_a (a, k) -> Set_a (a, f k)
      | Get_b k -> Get_b (fun b -> f (k b))
      | Set_b (b, k) -> Set_b (b, f k)
  end

  module Term = Free.Make (F)

  let get_a : A.t Term.t = Term.lift (Get_a Fun.id)
  let set_a (a : A.t) : unit Term.t = Term.lift (Set_a (a, ()))
  let get_b : B.t Term.t = Term.lift (Get_b Fun.id)
  let set_b (b : B.t) : unit Term.t = Term.lift (Set_b (b, ()))

  (** Interpretation into the state monad on pairs — the independent
      (non-entangled) semantics of Section 3.4. *)
  let rec denote : 'x. 'x Term.t -> state -> 'x * state =
    fun (type x) (m : x Term.t) ((a, b) as s : state) : (x * state) ->
     match m with
     | Term.Pure x -> (x, s)
     | Term.Impure (Get_a k) -> denote (k a) s
     | Term.Impure (Set_a (a', k)) -> denote k (a', b)
     | Term.Impure (Get_b k) -> denote (k b) s
     | Term.Impure (Set_b (b', k)) -> denote k (a, b')

  (** Operations executed along the path from a given state. *)
  let rec ops_performed (m : 'x Term.t) ((a, b) as s : state) : int =
    match m with
    | Term.Pure _ -> 0
    | Term.Impure (Get_a k) -> 1 + ops_performed (k a) s
    | Term.Impure (Set_a (a', k)) -> 1 + ops_performed k (a', b)
    | Term.Impure (Get_b k) -> 1 + ops_performed (k b) s
    | Term.Impure (Set_b (b', k)) -> 1 + ops_performed k (a, b')

  (** The normal form the seven equations guarantee: read both cells,
      write both cells once, return.  Extensionally equal to the input
      term under {!denote}. *)
  let canonical (m : 'x Term.t) : 'x Term.t =
    Term.bind get_a (fun a ->
        Term.bind get_b (fun b ->
            let x, (a', b') = denote m (a, b) in
            Term.bind (set_a a') (fun () ->
                Term.bind (set_b b') (fun () -> Term.return x))))

  let equal_on ~eq_x ~eq_a ~eq_b (states : state list) (m1 : 'x Term.t)
      (m2 : 'x Term.t) : bool =
    List.for_all
      (fun s ->
        let x1, (a1, b1) = denote m1 s in
        let x2, (a2, b2) = denote m2 s in
        eq_x x1 x2 && eq_a a1 a2 && eq_b b1 b2)
      states

  (** Interpret a free two-cell term against an {e entangled} semantics
      instead: the four operations of an arbitrary set-bx over state
      ['s] (passed as plain functions to keep this library independent
      of [esm_core]).  Under this interpretation the commutation
      equations — and hence {!canonical} — are unsound; tests exhibit
      the discrepancy. *)
  let denote_entangled ~(get_a : 's -> A.t) ~(set_a : A.t -> 's -> 's)
      ~(get_b : 's -> B.t) ~(set_b : B.t -> 's -> 's) =
    let rec go : 'x. 'x Term.t -> 's -> 'x * 's =
      fun (type x) (m : x Term.t) (s : 's) : (x * 's) ->
       match m with
       | Term.Pure x -> (x, s)
       | Term.Impure (Get_a k) -> go (k (get_a s)) s
       | Term.Impure (Set_a (a', k)) -> go k (set_a a' s)
       | Term.Impure (Get_b k) -> go (k (get_b s)) s
       | Term.Impure (Set_b (b', k)) -> go k (set_b b' s)
    in
    go
end
