(** The writer monad transformer: [WriterT W M A = M (A * W)]. *)

module Make
    (W : Monad_intf.MONOID)
    (M : Monad_intf.MONAD) =
struct
  type output = W.t

  include Extend.Make (struct
    type 'a t = ('a * W.t) M.t

    let return a = M.return (a, W.empty)

    let bind ma f =
      M.bind ma (fun (a, w) ->
          M.bind (f a) (fun (b, w') -> M.return (b, W.combine w w')))
  end)

  let tell (w : output) : unit t = M.return ((), w)
  let lift (ma : 'a M.t) : 'a t = M.bind ma (fun a -> M.return (a, W.empty))
  let run (ma : 'a t) : ('a * output) M.t = ma
end
