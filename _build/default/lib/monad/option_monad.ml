(** The option monad: computations that may fail without a reason.  The
    simplest example (after identity) of an effect the paper proposes to
    reconcile with bidirectionality ("exceptions", Section 5). *)

include Extend.Make (struct
  type 'a t = 'a option

  let return a = Some a
  let bind ma f = match ma with None -> None | Some a -> f a
end)

let zero () = None
let plus ma mb = match ma with Some _ -> ma | None -> mb
let fail = None

let run ~default = function Some a -> a | None -> default

let of_result = function Ok a -> Some a | Error _ -> None
