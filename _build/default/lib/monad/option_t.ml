(** The option monad transformer: [OptionT M A = M (A option)].  Adds
    failure to any monad; used to combine partiality with state in tests of
    effectful bx variants. *)

module Make (M : Monad_intf.MONAD) = struct
  include Extend.Make (struct
    type 'a t = 'a option M.t

    let return a = M.return (Some a)

    let bind ma f =
      M.bind ma (function None -> M.return None | Some a -> f a)
  end)

  let fail () : 'a t = M.return None
  let lift (ma : 'a M.t) : 'a t = M.bind ma (fun a -> M.return (Some a))

  let plus (ma : 'a t) (mb : 'a t) : 'a t =
    M.bind ma (function Some _ as r -> M.return r | None -> mb)

  let run (ma : 'a t) : 'a option M.t = ma
end
