(** The free monad over a signature functor.

    The paper's Section 2 recalls that state monads can be characterised by
    an {e algebraic theory} of reads and writes (Plotkin–Power); the free
    monad gives the term algebra of such a theory.  {!State_theory} builds
    the single-cell theory on top of this module and proves (extensionally)
    the normal-form theorem implied by the four cell laws. *)

module Make (F : Monad_intf.FUNCTOR) = struct
  type 'a t = Pure of 'a | Impure of 'a t F.t

  module Base = struct
    type nonrec 'a t = 'a t

    let return a = Pure a

    let rec bind m f =
      match m with
      | Pure a -> f a
      | Impure x -> Impure (F.map (fun m' -> bind m' f) x)
  end

  include (Extend.Make (Base) : Monad_intf.S with type 'a t := 'a t)

  (** Embed a single operation as a term. *)
  let lift (op : 'a F.t) : 'a t = Impure (F.map (fun a -> Pure a) op)

  (** Number of operation nodes in the term (size of the syntax tree along
      the executed spine is not defined here — this is the full tree for
      first-order signatures, and the spine length for HOAS ones only after
      interpretation). *)
  let rec depth_along (step : 'a t F.t -> 'a t) (m : 'a t) : int =
    match m with Pure _ -> 0 | Impure x -> 1 + depth_along step (step x)

  (** Interpret a term into a target monad via a handler, i.e. an
      [F]-algebra over [M]-computations. *)
  module Interpret (M : Monad_intf.MONAD) = struct
    type handler = { handle : 'x. 'x M.t F.t -> 'x M.t }

    let rec run (h : handler) (m : 'a t) : 'a M.t =
      match m with
      | Pure a -> M.return a
      | Impure x -> h.handle (F.map (run h) x)
  end
end
