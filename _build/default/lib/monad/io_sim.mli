(** Simulated I/O: the pure substitute for the paper's Haskell [IO].

    Section 4 of the paper needs only [print] and monadic sequencing.
    The world is an input queue plus an output trace, so effectful bx
    become testable: a test can assert exactly which messages were
    printed, and in what order.  (See DESIGN.md, substitution table.) *)

type world = { input : string list; output : string list (* reversed *) }

val initial_world : ?input:string list -> unit -> world

include Monad_intf.S with type 'a t = world -> 'a * world

val print : string -> unit t
(** Append a message to the output trace. *)

val print_line : string -> unit t
(** {!print} with a trailing newline. *)

val read_line : string option t
(** Consume the next line of input, if any. *)

val run : ?input:string list -> 'a t -> 'a * string list
(** Execute against a fresh world; the trace is returned in emission
    order. *)

val trace : ?input:string list -> 'a t -> string list
val value : ?input:string list -> 'a t -> 'a
