(** Finite probability distributions: the monad of probabilistic choice
    the paper's conclusions name among the effects to reconcile with
    bidirectionality.

    A distribution is a finite list of weighted outcomes.  [bind]
    multiplies weights along branches; {!normalise} merges duplicate
    outcomes (given a total order) and drops zero-weight ones, so
    distributions can be compared extensionally. *)

type 'a t = ('a * float) list

module Base = struct
  type nonrec 'a t = 'a t

  let return a = [ (a, 1.0) ]

  let bind m f =
    List.concat_map
      (fun (a, p) -> List.map (fun (b, q) -> (b, p *. q)) (f a))
      m
end

include (Extend.Make (Base) : Monad_intf.S with type 'a t := 'a t)

(** The uniform distribution over a non-empty list. *)
let uniform (xs : 'a list) : 'a t =
  match xs with
  | [] -> invalid_arg "Dist.uniform: empty support"
  | _ ->
      let p = 1.0 /. float_of_int (List.length xs) in
      List.map (fun x -> (x, p)) xs

(** Weighted choice; weights need not sum to 1 (they are renormalised by
    {!normalise} on comparison). *)
let weighted (xs : ('a * float) list) : 'a t = xs

(** [choice p x y]: [x] with probability [p], [y] with [1 - p]. *)
let choice (p : float) (x : 'a t) (y : 'a t) : 'a t =
  List.map (fun (a, q) -> (a, p *. q)) x
  @ List.map (fun (a, q) -> (a, (1.0 -. p) *. q)) y

(** Merge equal outcomes, drop (near-)zero weights, sort by outcome. *)
let normalise ~(compare_outcome : 'a -> 'a -> int) (m : 'a t) : 'a t =
  let sorted = List.sort (fun (a, _) (b, _) -> compare_outcome a b) m in
  let rec merge = function
    | [] -> []
    | (a, p) :: (b, q) :: rest when compare_outcome a b = 0 ->
        merge ((a, p +. q) :: rest)
    | (a, p) :: rest -> (a, p) :: merge rest
  in
  List.filter (fun (_, p) -> p > 1e-12) (merge sorted)

(** Total probability mass (1.0 for a proper distribution). *)
let mass (m : 'a t) : float = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 m

(** Probability assigned to outcomes satisfying the predicate. *)
let prob (pred : 'a -> bool) (m : 'a t) : float =
  List.fold_left (fun acc (a, p) -> if pred a then acc +. p else acc) 0.0 m

(** Expected value under a valuation. *)
let expect (f : 'a -> float) (m : 'a t) : float =
  List.fold_left (fun acc (a, p) -> acc +. (p *. f a)) 0.0 m

(** Extensional equality after normalisation, with a weight tolerance. *)
let equal ~(compare_outcome : 'a -> 'a -> int) ?(eps = 1e-9) (m1 : 'a t)
    (m2 : 'a t) : bool =
  let n1 = normalise ~compare_outcome m1 in
  let n2 = normalise ~compare_outcome m2 in
  List.length n1 = List.length n2
  && List.for_all2
       (fun (a, p) (b, q) ->
         compare_outcome a b = 0 && Float.abs (p -. q) <= eps)
       n1 n2

let support (m : 'a t) : 'a list = List.map fst m
