(** Relational algebra over {!Table}. *)

val select : Pred.t -> Table.t -> Table.t
val project : string list -> Table.t -> Table.t

val rename : (string * string) list -> Table.t -> Table.t
(** Rename columns per the (old, new) mapping. *)

val union : Table.t -> Table.t -> Table.t
(** Set union; schemas must be equal ({!Table.Table_error} otherwise). *)

val diff : Table.t -> Table.t -> Table.t
val inter : Table.t -> Table.t -> Table.t

val product : Table.t -> Table.t -> Table.t
(** Cartesian product; column names must be disjoint. *)

val join : Table.t -> Table.t -> Table.t
(** Natural join: rows agreeing on all shared columns; the result schema
    is the left schema followed by the right-only columns. *)

(** {1 Aggregation} *)

(** Aggregate functions for {!group_by}; [Avg] uses integer division. *)
type aggregate =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

val group_by :
  keys:string list -> aggs:(string * aggregate) list -> Table.t -> Table.t
(** One output row per distinct key tuple: the key columns followed by
    one column per named aggregate. *)

val sort_rows : by:string list -> ?desc:bool -> Table.t -> Row.t list
(** Rows sorted by the given columns, for ordered presentation (tables
    themselves are canonical sets). *)
