(** Relational algebra over {!Table}: selection, projection, renaming,
    set operations, cartesian product and natural join. *)

let select (p : Pred.t) (t : Table.t) : Table.t =
  Table.filter (Pred.eval (Table.schema t) p) t

let project (columns : string list) (t : Table.t) : Table.t =
  let schema' = Schema.project (Table.schema t) columns in
  Table.of_rows schema'
    (List.map (Row.project (Table.schema t) columns) (Table.rows t))

let rename (mapping : (string * string) list) (t : Table.t) : Table.t =
  Table.of_rows (Schema.rename (Table.schema t) mapping) (Table.rows t)

let check_same_schema op t1 t2 =
  if not (Schema.equal (Table.schema t1) (Table.schema t2)) then
    Table.errorf "%s: schema mismatch: %s vs %s" op
      (Schema.to_string (Table.schema t1))
      (Schema.to_string (Table.schema t2))

let union (t1 : Table.t) (t2 : Table.t) : Table.t =
  check_same_schema "union" t1 t2;
  Table.of_rows (Table.schema t1) (Table.rows t1 @ Table.rows t2)

let diff (t1 : Table.t) (t2 : Table.t) : Table.t =
  check_same_schema "diff" t1 t2;
  Table.filter (fun r -> not (Table.mem t2 r)) t1

let inter (t1 : Table.t) (t2 : Table.t) : Table.t =
  check_same_schema "inter" t1 t2;
  Table.filter (Table.mem t2) t1

let product (t1 : Table.t) (t2 : Table.t) : Table.t =
  let schema' = Schema.concat (Table.schema t1) (Table.schema t2) in
  Table.of_rows schema'
    (List.concat_map
       (fun r1 -> List.map (Row.concat r1) (Table.rows t2))
       (Table.rows t1))

(** Natural join: match rows agreeing on all shared columns; the result
    schema is [t1]'s columns followed by [t2]'s non-shared columns. *)
let join (t1 : Table.t) (t2 : Table.t) : Table.t =
  let s1 = Table.schema t1 and s2 = Table.schema t2 in
  let shared = Schema.shared s1 s2 in
  let s2_rest =
    List.filter
      (fun n -> not (List.mem n shared))
      (Schema.column_names s2)
  in
  let schema' =
    Schema.make
      (Schema.columns s1
      @ List.map (fun n -> (n, Schema.ty_of s2 n)) s2_rest)
  in
  let key schema row = List.map (Row.get schema row) shared in
  Table.of_rows schema'
    (List.concat_map
       (fun r1 ->
         let k1 = key s1 r1 in
         List.filter_map
           (fun r2 ->
             if List.for_all2 Value.equal k1 (key s2 r2) then
               Some (Row.concat r1 (Row.project s2 s2_rest r2))
             else None)
           (Table.rows t2))
       (Table.rows t1))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(** Aggregate functions for {!group_by}.  [Avg] uses integer division
    (the value model has no floats). *)
type aggregate =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

let aggregate_ty (schema : Schema.t) : aggregate -> Value.ty = function
  | Count -> Value.Tint
  | Sum c | Avg c -> (
      match Schema.ty_of schema c with
      | Value.Tint -> Value.Tint
      | ty ->
          Table.errorf "aggregate: cannot sum column %s of type %s" c
            (Value.type_to_string ty))
  | Min c | Max c -> Schema.ty_of schema c

let rec eval_aggregate (schema : Schema.t) (rows : Row.t list) :
    aggregate -> Value.t = function
  | Count -> Value.Int (List.length rows)
  | Sum c ->
      Value.Int
        (List.fold_left
           (fun acc r ->
             match Row.get schema r c with
             | Value.Int i -> acc + i
             | v ->
                 Table.errorf "sum: non-integer value %s" (Value.to_string v))
           0 rows)
  | Avg c -> (
      match (rows, eval_aggregate schema rows (Sum c)) with
      | [], _ -> Value.Int 0
      | _, Value.Int total -> Value.Int (total / List.length rows)
      | _, v -> v)
  | Min c ->
      List.fold_left
        (fun acc r ->
          let v = Row.get schema r c in
          if Value.compare v acc < 0 then v else acc)
        (Row.get schema (List.hd rows) c)
        rows
  | Max c ->
      List.fold_left
        (fun acc r ->
          let v = Row.get schema r c in
          if Value.compare v acc > 0 then v else acc)
        (Row.get schema (List.hd rows) c)
        rows

(** [group_by ~keys ~aggs t]: one output row per distinct key tuple,
    carrying the key columns followed by one column per named aggregate.
    [Min]/[Max] require non-empty groups (guaranteed by construction). *)
let group_by ~(keys : string list) ~(aggs : (string * aggregate) list)
    (t : Table.t) : Table.t =
  let schema = Table.schema t in
  let out_schema =
    Schema.make
      (List.map (fun k -> (k, Schema.ty_of schema k)) keys
      @ List.map (fun (n, agg) -> (n, aggregate_ty schema agg)) aggs)
  in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = List.map (Row.get schema r) keys in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (r :: existing))
    (Table.rows t);
  let out_rows =
    Hashtbl.fold
      (fun key rows acc ->
        Row.of_list
          (key @ List.map (fun (_, agg) -> eval_aggregate schema rows agg) aggs)
        :: acc)
      groups []
  in
  Table.of_rows out_schema out_rows

(** Rows sorted by the given columns (tables themselves are canonical
    sets; use this for ordered presentation). *)
let sort_rows ~(by : string list) ?(desc = false) (t : Table.t) : Row.t list =
  let schema = Table.schema t in
  let cmp r1 r2 =
    let c =
      List.fold_left
        (fun acc col ->
          if acc <> 0 then acc
          else Value.compare (Row.get schema r1 col) (Row.get schema r2 col))
        0 by
    in
    if desc then -c else c
  in
  List.sort cmp (Table.rows t)
