(** Functional dependencies: the side conditions under which relational
    lenses are well-behaved (Bohannon–Pierce–Vaughan type their lenses by
    the FDs the source must satisfy; our {!Rlens.project} and
    {!Rlens.join} state theirs informally — this module makes the
    conditions checkable and generators verifiable).

    An FD [X -> Y] holds in a table when any two rows agreeing on the
    [X] columns also agree on the [Y] columns. *)

type t = { determinant : string list; dependent : string list }

let v determinant dependent = { determinant; dependent }

let pp fmt fd =
  Format.fprintf fmt "%s -> %s"
    (String.concat "," fd.determinant)
    (String.concat "," fd.dependent)

let to_string fd = Format.asprintf "%a" pp fd

(** Does the FD hold in the table?  O(n) with a hash index. *)
let holds (fd : t) (table : Table.t) : bool =
  let schema = Table.schema table in
  let det r = List.map (Row.get schema r) fd.determinant in
  let dep r = List.map (Row.get schema r) fd.dependent in
  let seen = Hashtbl.create (max 16 (Table.cardinality table)) in
  List.for_all
    (fun r ->
      let k = det r in
      let d = dep r in
      match Hashtbl.find_opt seen k with
      | None ->
          Hashtbl.add seen k d;
          true
      | Some d' -> List.for_all2 Value.equal d d')
    (Table.rows table)

let all_hold (fds : t list) (table : Table.t) : bool =
  List.for_all (fun fd -> holds fd table) fds

(** The rows violating the FD, paired up (first witness per key). *)
let violations (fd : t) (table : Table.t) : (Row.t * Row.t) list =
  let schema = Table.schema table in
  let det r = List.map (Row.get schema r) fd.determinant in
  let dep r = List.map (Row.get schema r) fd.dependent in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun r ->
      let k = det r in
      match Hashtbl.find_opt seen k with
      | None ->
          Hashtbl.add seen k r;
          None
      | Some r0 ->
          if List.for_all2 Value.equal (dep r0) (dep r) then None
          else Some (r0, r))
    (Table.rows table)

(** Is [columns] a key of the table (it determines every column)? *)
let is_key (columns : string list) (table : Table.t) : bool =
  holds
    { determinant = columns; dependent = Schema.column_names (Table.schema table) }
    table

(** Keep, for each determinant value, only the first row in canonical
    order — the cheapest way to force an FD onto generated data. *)
let enforce (fd : t) (table : Table.t) : Table.t =
  let schema = Table.schema table in
  let det r = List.map (Row.get schema r) fd.determinant in
  let seen = Hashtbl.create 16 in
  Table.filter
    (fun r ->
      let k = det r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    table

(** Armstrong-style semantic implication over a set of sample tables:
    [implied_by fds fd samples] is a cheap refutation check — it returns
    false iff some sample satisfies all of [fds] but violates [fd].
    (A sound "yes" would need the chase; samples give a practical
    falsifier for tests.) *)
let not_refuted_by ~(samples : Table.t list) (fds : t list) (fd : t) : bool =
  List.for_all
    (fun t -> if all_hold fds t then holds fd t else true)
    samples
