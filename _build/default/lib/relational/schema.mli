(** Table schemas: an ordered list of distinct, typed column names. *)

exception Schema_error of string

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Schema_error} with a formatted message. *)

type t

val make : (string * Value.ty) list -> t
(** Build a schema; raises {!Schema_error} on duplicate column names. *)

val columns : t -> (string * Value.ty) list
val column_names : t -> string list
val arity : t -> int
val mem : t -> string -> bool

val ty_of : t -> string -> Value.ty
(** Type of a column; raises {!Schema_error} if absent. *)

val index : t -> string -> int
(** Position of a column in the row layout; raises {!Schema_error} if
    absent. *)

val equal : t -> t -> bool

val project : t -> string list -> t
(** Keep only the named columns, in the order given. *)

val rename : t -> (string * string) list -> t
(** Rename columns per the (old, new) mapping; unmentioned columns keep
    their names. *)

val concat : t -> t -> t
(** Concatenation for cartesian product; column names must be disjoint. *)

val shared : t -> t -> string list
(** Columns common to both schemas (for natural join); their types must
    agree. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
