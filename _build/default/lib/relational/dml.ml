(** Data-manipulation statements over tables, and their translation
    through updatable views.

    [apply] executes insert/delete/update statements against a table;
    [through] is the view-update pattern the paper's database motivation
    is about: run the statement {e on the view} of a lens, then push the
    modified view back through [put] — the stored table absorbs the
    change while everything outside the view is preserved.

    Property tests in [test/test_dml.ml] include the classic view-update
    correctness statement: for a select-lens view, running a
    view-compatible statement through the view equals running it directly
    on the store. *)

type assignment = string * Pred.expr
(** column := expression (evaluated against the pre-update row) *)

type t =
  | Insert of Row.t
  | Delete of Pred.t
  | Update of Pred.t * assignment list

let pp fmt = function
  | Insert r -> Format.fprintf fmt "insert %s" (Row.to_string r)
  | Delete p -> Format.fprintf fmt "delete where %a" Pred.pp p
  | Update (p, assigns) ->
      Format.fprintf fmt "update set %s where %a"
        (String.concat ", "
           (List.map
              (fun (c, e) -> Format.asprintf "%s = %a" c Pred.pp_expr e)
              assigns))
        Pred.pp p

let apply (table : Table.t) (stmt : t) : Table.t =
  let schema = Table.schema table in
  match stmt with
  | Insert r -> Table.insert table r
  | Delete p -> Table.filter (fun r -> not (Pred.eval schema p r)) table
  | Update (p, assigns) ->
      Table.map schema
        (fun r ->
          if Pred.eval schema p r then
            List.fold_left
              (fun r' (c, e) ->
                Row.set schema r' c (Pred.eval_expr schema r e))
              r assigns
          else r)
        table

let apply_all (table : Table.t) (stmts : t list) : Table.t =
  List.fold_left apply table stmts

(** Run a statement on the lens's view, then push the updated view back
    into the source: the updatable-view reading of DML. *)
let through (lens : (Table.t, Table.t) Esm_lens.Lens.t) (stmt : t)
    (source : Table.t) : Table.t =
  let view = Esm_lens.Lens.get lens source in
  Esm_lens.Lens.put lens source (apply view stmt)
