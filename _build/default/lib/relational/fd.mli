(** Functional dependencies: the side conditions under which relational
    lenses are well-behaved, made checkable and enforceable.

    An FD [X -> Y] holds in a table when any two rows agreeing on the
    [X] columns also agree on the [Y] columns. *)

type t = { determinant : string list; dependent : string list }

val v : string list -> string list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val holds : t -> Table.t -> bool
(** O(n), hash-indexed. *)

val all_hold : t list -> Table.t -> bool

val violations : t -> Table.t -> (Row.t * Row.t) list
(** Pairs of rows witnessing each violation (first witness per key). *)

val is_key : string list -> Table.t -> bool
(** Do the columns determine every column of the table? *)

val enforce : t -> Table.t -> Table.t
(** Keep one row per determinant value (the first in canonical order) —
    forces the FD onto generated data. *)

val not_refuted_by : samples:Table.t list -> t list -> t -> bool
(** Cheap semantic-implication falsifier: false iff some sample
    satisfies all premise FDs but violates the conclusion. *)
