(** Relational lenses: asymmetric lenses between tables, in the spirit of
    Bohannon, Pierce & Vaughan's "Relational lenses" (PODS 2006).  These
    are the database instantiation of the lenses the paper feeds into its
    Lemma 4: composing them with {!Esm_core.Of_lens} gives an entangled
    state monad whose A-side is the stored table and whose B-side is the
    view.

    Well-behavedness caveats (as in the relational-lenses literature):

    - {!select} is very well-behaved provided the updated view only
      contains rows satisfying the predicate ([put] raises
      {!Esm_lens.Lens.Shape_error} otherwise).
    - {!project} is well-behaved on sources satisfying the functional
      dependency [key -> dropped columns]; [put] recovers dropped values
      from the old source by key, falling back to per-type defaults.
    - {!rename} is an isomorphism, hence very well-behaved.

    The property suites in [test/test_rlens.ml] generate sources and views
    inside those domains. *)

open Esm_lens

(** [select p]: the view is the subtable satisfying [p].  [put] keeps the
    non-matching source rows and replaces the matching ones by the view. *)
let select (p : Pred.t) : (Table.t, Table.t) Lens.t =
  Lens.v
    ~name:(Format.asprintf "select %a" Pred.pp p)
    ~get:(Algebra.select p)
    ~put:(fun source view ->
      let schema = Table.schema source in
      if not (Schema.equal schema (Table.schema view)) then
        Lens.shape_errorf "select lens: view schema %s differs from source %s"
          (Schema.to_string (Table.schema view))
          (Schema.to_string schema);
      List.iter
        (fun r ->
          if not (Pred.eval schema p r) then
            Lens.shape_errorf
              "select lens: view row %s violates the selection predicate"
              (Row.to_string r))
        (Table.rows view);
      let untouched = Table.filter (fun r -> not (Pred.eval schema p r)) source in
      Algebra.union untouched view)
    ()

(** [project ~keep ~key source_schema]: the view keeps columns [keep] (in
    order); [key ⊆ keep] identifies rows.  [put] recovers each dropped
    column of a view row from the source row with the same key, or from
    the per-type default when the key is new. *)
let project ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : (Table.t, Table.t) Lens.t =
  if not (List.for_all (fun k -> List.mem k keep) key) then
    Schema.errorf "project lens: key columns must be kept";
  let view_schema = Schema.project source_schema keep in
  (* Per-source-column recipe: copy from the view row, or recover a
     dropped value from the old source row with the same key (falling
     back to the per-type default). *)
  let column_plan =
    List.map
      (fun (n, ty) ->
        match
          List.find_index (fun k -> String.equal k n) keep
        with
        | Some view_index -> `Kept view_index
        | None ->
            `Dropped (Schema.index source_schema n, Value.default_of_type ty))
      (Schema.columns source_schema)
  in
  let view_key_indices = List.map (Schema.index view_schema) key in
  let source_key_indices = List.map (Schema.index source_schema) key in
  let put source view =
    if not (Schema.equal (Table.schema view) view_schema) then
      Lens.shape_errorf "project lens: view schema %s does not match %s"
        (Schema.to_string (Table.schema view))
        (Schema.to_string view_schema);
    let old_by_key = Hashtbl.create (max 16 (Table.cardinality source)) in
    List.iter
      (fun r ->
        Hashtbl.replace old_by_key
          (List.map (fun i -> r.(i)) source_key_indices)
          r)
      (Table.rows source);
    let restore view_row =
      let k = List.map (fun i -> view_row.(i)) view_key_indices in
      let recovered = Hashtbl.find_opt old_by_key k in
      Row.of_list
        (List.map
           (function
             | `Kept j -> view_row.(j)
             | `Dropped (i, default) -> (
                 match recovered with
                 | Some old_row -> old_row.(i)
                 | None -> default))
           column_plan)
    in
    Table.of_rows source_schema (List.map restore (Table.rows view))
  in
  Lens.v
    ~name:(Printf.sprintf "project [%s]" (String.concat "," keep))
    ~get:(Algebra.project keep)
    ~put ()

(** [rename mapping]: bijective column renaming; an iso lens. *)
let rename (mapping : (string * string) list) : (Table.t, Table.t) Lens.t =
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  Lens.v
    ~name:
      (Printf.sprintf "rename [%s]"
         (String.concat ","
            (List.map (fun (a, b) -> a ^ ">" ^ b) mapping)))
    ~get:(Algebra.rename mapping)
    ~put:(fun _ view -> Algebra.rename inverse view)
    ()

(** [drop column ~key schema]: drop a single column (projection keeping
    the rest). *)
let drop (column : string) ~(key : string list) (schema : Schema.t) :
    (Table.t, Table.t) Lens.t =
  let keep =
    List.filter
      (fun n -> not (String.equal n column))
      (Schema.column_names schema)
  in
  Lens.with_name (Printf.sprintf "drop %s" column)
    (project ~keep ~key schema)

(** [join ~left ~right]: the view is the natural join of two stored
    tables; the source is the pair.  Put policy (a simplified
    Bohannon-Pierce "join template"):

    - the left table is replaced by the view's projection onto the left
      schema;
    - the right table keeps its rows for keys absent from the view and
      takes the view's projection onto the right schema for keys present.

    Well-behaved on sources where (i) the shared columns are a key of the
    right table and (ii) every left row joins (no dangling left rows) —
    the standard functional-dependency conditions for relational join
    lenses.  [put] raises {!Esm_lens.Lens.Shape_error} if the view schema
    does not match the join schema. *)
let join ~(left : Schema.t) ~(right : Schema.t) :
    (Table.t * Table.t, Table.t) Lens.t =
  let shared = Schema.shared left right in
  let right_rest =
    List.filter
      (fun n -> not (List.mem n shared))
      (Schema.column_names right)
  in
  let join_schema =
    Schema.make
      (Schema.columns left
      @ List.map (fun n -> (n, Schema.ty_of right n)) right_rest)
  in
  let key_of schema row = List.map (Row.get schema row) shared in
  let put (_l, r) view =
    if not (Schema.equal (Table.schema view) join_schema) then
      Lens.shape_errorf "join lens: view schema %s does not match %s"
        (Schema.to_string (Table.schema view))
        (Schema.to_string join_schema);
    let new_left =
      Table.of_rows left
        (List.map
           (Row.project join_schema (Schema.column_names left))
           (Table.rows view))
    in
    let view_keys = List.map (key_of join_schema) (Table.rows view) in
    let untouched_right =
      Table.filter
        (fun row ->
          not
            (List.exists
               (List.for_all2 Value.equal (key_of right row))
               view_keys))
        r
    in
    let new_right_rows =
      List.map
        (Row.project join_schema (Schema.column_names right))
        (Table.rows view)
    in
    let new_right =
      Algebra.union untouched_right (Table.of_rows right new_right_rows)
    in
    (new_left, new_right)
  in
  Lens.v ~name:"join"
    ~get:(fun (l, r) -> Algebra.join l r)
    ~put ()
