(** Rows: flat arrays of values laid out according to a schema. *)

type t = Value.t array

let of_list (vs : Value.t list) : t = Array.of_list vs
let to_list (r : t) : Value.t list = Array.to_list r

let get (schema : Schema.t) (r : t) (column : string) : Value.t =
  r.(Schema.index schema column)

let set (schema : Schema.t) (r : t) (column : string) (v : Value.t) : t =
  let r' = Array.copy r in
  r'.(Schema.index schema column) <- v;
  r'

(** Does the row match the schema's arity and column types? *)
let conforms (schema : Schema.t) (r : t) : bool =
  Array.length r = Schema.arity schema
  && List.for_all2
       (fun (_, ty) v -> Value.equal_ty ty (Value.type_of v))
       (Schema.columns schema) (to_list r)

(** Restrict a row to the named columns, in the order given. *)
let project (schema : Schema.t) (columns : string list) (r : t) : t =
  Array.of_list (List.map (get schema r) columns)

let concat (r1 : t) (r2 : t) : t = Array.append r1 r2

let equal (r1 : t) (r2 : t) : bool =
  Array.length r1 = Array.length r2
  && Array.for_all2 Value.equal r1 r2

let compare (r1 : t) (r2 : t) : int =
  let c = Int.compare (Array.length r1) (Array.length r2) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length r1 then 0
      else
        let c = Value.compare r1.(i) r2.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let pp fmt (r : t) =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map Value.to_string (to_list r)))

let to_string r = Format.asprintf "%a" pp r
