(** Deterministic workload generation for benchmarks and examples,
    driven by a seeded linear congruential generator so runs are
    reproducible. *)

type rng

val rng : seed:int -> rng
val next : rng -> int
val int : rng -> int -> int
val pick : rng -> 'a list -> 'a

val employees_schema : Schema.t
(** [(id:int, name:string, dept:string, salary:int, email:string)]. *)

val employees : seed:int -> size:int -> Table.t
(** An employees table with [size] rows and unique ids, satisfying the
    functional dependency [id -> *]. *)

val engineering_view : seed:int -> size:int -> Table.t
(** A select+project view over {!employees}, used as updated views in
    put benchmarks. *)
