(** Tables with set semantics: rows are kept sorted and deduplicated, so
    structural equality of tables is relational equality. *)

exception Table_error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Table_error s)) fmt

type t = { schema : Schema.t; rows : Row.t list (* sorted, distinct *) }

let normalise rows = List.sort_uniq Row.compare rows

let of_rows (schema : Schema.t) (rows : Row.t list) : t =
  List.iter
    (fun r ->
      if not (Row.conforms schema r) then
        errorf "row %s does not conform to schema %s" (Row.to_string r)
          (Schema.to_string schema))
    rows;
  { schema; rows = normalise rows }

(** Build from value lists (convenience for examples and tests). *)
let of_lists (schema : Schema.t) (rows : Value.t list list) : t =
  of_rows schema (List.map Row.of_list rows)

let empty (schema : Schema.t) : t = { schema; rows = [] }
let schema t = t.schema
let rows t = t.rows
let cardinality t = List.length t.rows
let mem t r = List.exists (Row.equal r) t.rows

let insert t r =
  if not (Row.conforms t.schema r) then
    errorf "insert: row %s does not conform to schema %s" (Row.to_string r)
      (Schema.to_string t.schema);
  { t with rows = normalise (r :: t.rows) }

let delete t r = { t with rows = List.filter (fun x -> not (Row.equal x r)) t.rows }

let filter (keep : Row.t -> bool) t = { t with rows = List.filter keep t.rows }

(** Map a per-row transformation; the result is renormalised under the new
    schema. *)
let map (schema' : Schema.t) (f : Row.t -> Row.t) t : t =
  of_rows schema' (List.map f t.rows)

let equal t1 t2 =
  Schema.equal t1.schema t2.schema
  && List.length t1.rows = List.length t2.rows
  && List.for_all2 Row.equal t1.rows t2.rows

let pp fmt t =
  let widths =
    List.mapi
      (fun i (n, _) ->
        List.fold_left
          (fun w r -> max w (String.length (Value.to_string r.(i))))
          (String.length n) t.rows)
      (Schema.columns t.schema)
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Format.fprintf fmt "%s@\n" hline;
  Format.fprintf fmt "|%s|@\n"
    (String.concat "|"
       (List.map2
          (fun (n, _) w -> " " ^ pad n w ^ " ")
          (Schema.columns t.schema) widths));
  Format.fprintf fmt "%s@\n" hline;
  List.iter
    (fun r ->
      Format.fprintf fmt "|%s|@\n"
        (String.concat "|"
           (List.mapi
              (fun i w -> " " ^ pad (Value.to_string r.(i)) w ^ " ")
              widths)))
    t.rows;
  Format.fprintf fmt "%s" hline

let to_string t = Format.asprintf "%a" pp t
