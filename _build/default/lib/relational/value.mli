(** Atomic values stored in relational tables: the "database tables" the
    paper's introduction names as a kind of model a bx synchronises. *)

type t = Int of int | Str of string | Bool of bool
[@@deriving eq, ord, show]

type ty = Tint | Tstr | Tbool [@@deriving eq, ord, show]

val type_of : t -> ty
val to_string : t -> string
val type_to_string : ty -> string

val default_of_type : ty -> t
(** A canonical default of each type, used by lenses that must invent
    values for dropped columns. *)
