(** Rows: flat arrays of values laid out according to a schema. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val get : Schema.t -> t -> string -> Value.t
(** Value of the named column. *)

val set : Schema.t -> t -> string -> Value.t -> t
(** Non-destructive single-column update. *)

val conforms : Schema.t -> t -> bool
(** Does the row match the schema's arity and column types? *)

val project : Schema.t -> string list -> t -> t
(** Restrict a row to the named columns, in the order given. *)

val concat : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
