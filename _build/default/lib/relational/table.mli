(** Tables with set semantics: rows are kept sorted and deduplicated, so
    structural equality of tables is relational equality. *)

exception Table_error of string

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Table_error} with a formatted message. *)

type t

val of_rows : Schema.t -> Row.t list -> t
(** Build a table; every row must conform to the schema (otherwise
    {!Table_error}); rows are deduplicated and sorted. *)

val of_lists : Schema.t -> Value.t list list -> t
(** Convenience wrapper over {!of_rows}. *)

val empty : Schema.t -> t
val schema : t -> Schema.t

val rows : t -> Row.t list
(** Rows in canonical (sorted) order. *)

val cardinality : t -> int
val mem : t -> Row.t -> bool

val insert : t -> Row.t -> t
(** Set insertion (idempotent); the row must conform to the schema. *)

val delete : t -> Row.t -> t
val filter : (Row.t -> bool) -> t -> t

val map : Schema.t -> (Row.t -> Row.t) -> t -> t
(** Per-row transformation; the result is renormalised under the new
    schema. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** ASCII-art rendering with padded columns. *)

val to_string : t -> string
