(** Atomic values stored in relational tables: the "database tables" the
    paper's introduction names as a kind of model a bx synchronises. *)

type t = Int of int | Str of string | Bool of bool
[@@deriving eq, ord, show { with_path = false }]

type ty = Tint | Tstr | Tbool [@@deriving eq, ord, show { with_path = false }]

let type_of = function Int _ -> Tint | Str _ -> Tstr | Bool _ -> Tbool

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Bool b -> string_of_bool b

let type_to_string = function
  | Tint -> "int"
  | Tstr -> "string"
  | Tbool -> "bool"

(** A canonical default of each type, used by lenses that must invent
    values for dropped columns. *)
let default_of_type = function
  | Tint -> Int 0
  | Tstr -> Str ""
  | Tbool -> Bool false
