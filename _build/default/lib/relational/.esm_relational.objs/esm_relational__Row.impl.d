lib/relational/row.pp.ml: Array Format Int List Schema String Value
