lib/relational/schema.pp.mli: Format Value
