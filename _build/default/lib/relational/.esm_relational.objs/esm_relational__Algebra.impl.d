lib/relational/algebra.pp.ml: Hashtbl List Option Pred Row Schema Table Value
