lib/relational/fd.pp.mli: Format Row Table
