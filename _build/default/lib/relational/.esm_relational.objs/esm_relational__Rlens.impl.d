lib/relational/rlens.pp.ml: Algebra Array Esm_lens Format Hashtbl Lens List Pred Printf Row Schema String Table Value
