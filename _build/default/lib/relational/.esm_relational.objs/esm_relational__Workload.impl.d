lib/relational/workload.pp.ml: Algebra List Pred Row Schema String Table Value
