lib/relational/table.pp.mli: Format Row Schema Value
