lib/relational/schema.pp.ml: Format List String Value
