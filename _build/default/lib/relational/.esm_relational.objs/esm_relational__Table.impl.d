lib/relational/table.pp.ml: Array Format List Row Schema String Value
