lib/relational/row.pp.mli: Format Schema Value
