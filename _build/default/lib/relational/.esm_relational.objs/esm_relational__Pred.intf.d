lib/relational/pred.pp.mli: Format Row Schema Value
