lib/relational/pred.pp.ml: Format List Row Schema Value
