lib/relational/workload.pp.mli: Schema Table
