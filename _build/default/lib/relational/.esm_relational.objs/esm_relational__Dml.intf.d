lib/relational/dml.pp.mli: Esm_lens Format Pred Row Table
