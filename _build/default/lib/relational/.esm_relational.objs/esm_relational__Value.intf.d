lib/relational/value.pp.mli: Ppx_deriving_runtime
