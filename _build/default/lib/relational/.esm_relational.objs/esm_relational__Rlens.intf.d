lib/relational/rlens.pp.mli: Esm_lens Pred Schema Table
