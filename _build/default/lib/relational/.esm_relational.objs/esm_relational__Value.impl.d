lib/relational/value.pp.ml: Ppx_deriving_runtime
