lib/relational/query.pp.ml: Algebra Buffer Esm_lens Format List Pred Rlens Schema String Table Value
