lib/relational/dml.pp.ml: Esm_lens Format List Pred Row String Table
