lib/relational/fd.pp.ml: Format Hashtbl List Row Schema String Table Value
