lib/relational/algebra.pp.mli: Pred Row Table
