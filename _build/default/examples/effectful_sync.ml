(* Effectful bidirectional synchronisation (paper, Section 4).

   A set-bx whose setters perform (simulated) I/O: a message is printed
   exactly when a view actually changes.  Because side effects occur, this
   bx is by definition not a symmetric lens — yet the set-bx laws still
   hold, because the effects are change-triggered.  We replay the paper's
   literal integer example, then attach the same behaviour to a relational
   view-update bx, as the paper suggests should be possible.  Run with:
     dune exec examples/effectful_sync.exe  *)

open Esm_core

let show_trace label trace =
  Fmt.pr "%s@." label;
  if trace = [] then Fmt.pr "    (no output)@."
  else List.iter (fun line -> Fmt.pr "    IO: %s@." line) trace

(* --- The paper's literal example --------------------------------- *)

module E = Effectful.Paper_example

let () =
  Fmt.pr "== Section 4, literal: integer state, trivial underlying bx ==@.";
  let open E.Infix in
  show_trace "set_a 1 from state 0 (a change):" (E.trace (E.set_a 1) 0);
  show_trace "set_a 5 from state 5 (a no-op):" (E.trace (E.set_a 5) 5);
  show_trace "set_a 1 >> set_b 2 >> set_a 2 from 0:"
    (E.trace (E.set_a 1 >> E.set_b 2 >> E.set_a 2) 0);
  show_trace "(GS) get_a >>= set_a from 13 — laws hold even with IO:"
    (E.trace (E.bind E.get_a E.set_a) 13)

(* --- The generalisation the paper sketches ------------------------ *)

open Esm_relational

module Logged_view = Effectful.Make (struct
  type ta = Table.t
  type tb = Table.t
  type ts = Table.t

  let bx =
    Concrete.of_lens
      (Rlens.select Pred.(col "dept" = str "Engineering"))

  let equal_a = Table.equal
  let equal_b = Table.equal
  let equal_s = Table.equal
  let message_a = "AUDIT: stored table replaced"
  let message_b = "AUDIT: engineering view updated"
end)

let () =
  Fmt.pr "@.== generalised: change-audited relational view update ==@.";
  let store =
    Table.of_lists Workload.employees_schema
      [
        [ Value.Int 1; Value.Str "ada"; Value.Str "Engineering"; Value.Int 52_000; Value.Str "ada@corp" ];
        [ Value.Int 2; Value.Str "brian"; Value.Str "Sales"; Value.Int 47_000; Value.Str "brian@corp" ];
      ]
  in
  (* Re-setting the unchanged view: silent (hippocratic + silent). *)
  show_trace "putting back the unchanged view:"
    (Logged_view.trace
       (Logged_view.bind Logged_view.get_b Logged_view.set_b)
       store);
  (* A real edit: audited. *)
  let edited =
    Table.of_lists Workload.employees_schema
      [
        [ Value.Int 1; Value.Str "ada lovelace"; Value.Str "Engineering"; Value.Int 52_000; Value.Str "ada@corp" ];
      ]
  in
  show_trace "editing the view:"
    (Logged_view.trace (Logged_view.set_b edited) store);
  let ((), final), _ = Logged_view.run (Logged_view.set_b edited) store in
  Fmt.pr "@.store after audited view edit:@.%s@." (Table.to_string final)
