examples/quickstart.mli:
