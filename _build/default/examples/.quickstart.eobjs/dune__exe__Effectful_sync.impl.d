examples/effectful_sync.ml: Concrete Effectful Esm_core Esm_relational Fmt List Pred Rlens Table Value Workload
