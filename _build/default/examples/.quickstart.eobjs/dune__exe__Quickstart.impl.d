examples/quickstart.ml: Esm_core Esm_lens Fmt
