examples/mde_sync.ml: Diff Esm_core Esm_modelbx Fmt List Mbx Metamodel Model
