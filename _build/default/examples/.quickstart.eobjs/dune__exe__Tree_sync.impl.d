examples/tree_sync.ml: Esm_core Esm_lens Fmt Lens Option Tree
