examples/tree_sync.mli:
