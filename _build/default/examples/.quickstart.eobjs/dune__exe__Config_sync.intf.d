examples/config_sync.mli:
