examples/model_sync.ml: Esm_core Esm_symlens Fmt List Option String
