examples/model_sync.mli:
