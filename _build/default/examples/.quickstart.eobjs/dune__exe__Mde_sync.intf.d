examples/mde_sync.mli:
