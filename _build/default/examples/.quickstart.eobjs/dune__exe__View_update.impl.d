examples/view_update.ml: Algebra Esm_core Esm_lens Esm_relational Fmt Pred Rlens Schema Table Value Workload
