examples/config_sync.ml: Config_lens Esm_core Esm_lens Fmt Lens List Option String
