examples/view_update.mli:
