examples/effectful_sync.mli:
