(* Symmetric model synchronisation.

   The genuinely symmetric case from model-driven development (the
   paper's main motivation): a UML-ish class model and a SQL-ish schema
   kept consistent, where EACH side owns data the other lacks — the class
   model has documentation strings, the schema has column types.  Neither
   is an abstraction of the other, so no asymmetric lens applies: we need
   a symmetric lens with a complement, lifted to a put-bx over consistent
   triples (Lemma 6).  Run with:  dune exec examples/model_sync.exe  *)

(* Side A: class model — field names plus doc comments. *)
type class_model = { class_name : string; fields : (string * string) list }
(* (field, doc) *)

(* Side B: table schema — column names plus SQL types. *)
type table_schema = { table_name : string; columns : (string * string) list }
(* (column, sql type) *)

let equal_class m1 m2 = m1 = m2
let equal_schema s1 s2 = s1 = s2

(* The complement holds what synchronisation forgets: docs by field name
   and SQL types by column name, so they can be restored when an edit
   comes back from the other side. *)
type complement = { docs : (string * string) list; types : (string * string) list }

let lookup k l ~default = Option.value ~default (List.assoc_opt k l)

let sync_lens : (class_model, table_schema) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.v ~name:"class<->schema"
    ~init:{ docs = []; types = [] }
    ~put_r:(fun m c ->
      (* class model changed: rebuild the schema, restoring known column
         types from the complement, defaulting new columns to TEXT. *)
      let columns =
        List.map (fun (f, _) -> (f, lookup f c.types ~default:"TEXT")) m.fields
      in
      ( { table_name = String.lowercase_ascii m.class_name ^ "s"; columns },
        {
          docs = List.map (fun (f, d) -> (f, d)) m.fields;
          types = columns;
        } ))
    ~put_l:(fun s c ->
      (* schema changed: rebuild the class model, restoring known docs,
         defaulting new fields to an empty doc. *)
      let fields =
        List.map (fun (col, _) -> (col, lookup col c.docs ~default:"")) s.columns
      in
      let class_name =
        String.capitalize_ascii
          (if String.length s.table_name > 1 && String.ends_with ~suffix:"s" s.table_name
           then String.sub s.table_name 0 (String.length s.table_name - 1)
           else s.table_name)
      in
      ( { class_name; fields },
        { docs = fields; types = s.columns } ))
    ~equal_c:(fun c1 c2 -> c1 = c2)
    ()

module I = (val Esm_symlens.Symlens.to_instance sync_lens)

module Bx = Esm_core.Of_symmetric.Make (I) (struct
  let equal_a = equal_class
  let equal_b = equal_schema
end)

let pp_model m =
  Fmt.pr "  class %s@." m.class_name;
  List.iter (fun (f, d) -> Fmt.pr "    %-10s (* %s *)@." f d) m.fields

let pp_schema s =
  Fmt.pr "  CREATE TABLE %s (@." s.table_name;
  List.iter (fun (c, ty) -> Fmt.pr "    %-10s %s,@." c ty) s.columns;
  Fmt.pr "  );@."

let () =
  let model0 =
    {
      class_name = "Employee";
      fields =
        [ ("id", "primary key"); ("name", "legal name"); ("dept", "org unit") ];
    }
  in
  let state0 = Bx.initial ~seed_a:model0 in
  Fmt.pr "== initial class model (side A) ==@.";
  pp_model model0;

  let open Bx.Syntax in
  let session =
    let* schema = Bx.get_b in
    Fmt.pr "@.== derived schema (side B) ==@.";
    pp_schema schema;

    (* DBA edits the schema: adds a typed column, changes a type. *)
    let schema' =
      {
        schema with
        columns =
          [
            ("id", "INTEGER");
            ("name", "VARCHAR(80)");
            ("dept", "TEXT");
            ("salary", "DECIMAL");
          ];
      }
    in
    Fmt.pr "@.== DBA pushes a schema edit (put_ba) ==@.";
    pp_schema schema';
    let* model' = Bx.put_ba schema' in
    Fmt.pr "@.== class model after round trip: docs SURVIVED, salary is new ==@.";
    pp_model model';

    (* Developer edits the model: renames nothing, documents salary,
       drops dept. *)
    let model'' =
      {
        model' with
        fields =
          [
            ("id", "primary key");
            ("name", "legal name");
            ("salary", "gross, annual");
          ];
      }
    in
    Fmt.pr "@.== developer pushes a model edit (put_ab) ==@.";
    let* schema'' = Bx.put_ab model'' in
    Fmt.pr "== schema after round trip: column TYPES survived, dept dropped ==@.";
    pp_schema schema'';
    Bx.return ()
  in
  let (), final = Bx.run session state0 in
  Fmt.pr "@.final state consistent: %b@." (Bx.consistent final)
