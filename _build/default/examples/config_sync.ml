(* Config-file synchronisation through a textual lens.

   The raw text of a config file (side A: comments, layout, everything)
   kept in sync with its parsed bindings (side B) — a Boomerang/Augeas
   style lens lifted into an entangled state monad.  Programs edit the
   structured view; the hidden state quietly preserves every comment and
   whitespace choice a human made in the file.  Run with:
     dune exec examples/config_sync.exe  *)

open Esm_lens

let original =
  "# service configuration -- managed in git, hand-tuned with love\n\
   host = localhost\n\
   port=5432\n\
   \n\
   ; flags follow\n\
   \tdebug  =  true\n"

module Bx = Esm_core.Of_lens.Make (struct
  type s = string
  type v = (string * string) list

  let lens = Config_lens.bindings
  let equal_s = String.equal
end)

let print_bindings kvs =
  List.iter (fun (k, v) -> Fmt.pr "    %s -> %s@." k v) kvs

let () =
  Fmt.pr "== the file on disk (side A) ==@.%s@." original;

  let open Bx.Syntax in
  let session =
    let* bindings = Bx.get_b in
    Fmt.pr "== parsed bindings (side B) ==@.";
    print_bindings bindings;

    (* A deployment tool edits the STRUCTURE: new host, debug off,
       a new timeout key. *)
    let* () =
      Bx.set_b
        [
          ("host", "db.prod.internal");
          ("port", "5432");
          ("debug", "false");
          ("timeout", "30");
        ]
    in
    let* text' = Bx.get_a in
    Fmt.pr "@.== the file after the structured edit ==@.%s@." text';
    Fmt.pr "note: both comments and the odd spacing around 'debug' survived@.";

    (* A human edits the TEXT: adds a comment and tweaks a value. *)
    let* () =
      Bx.set_a (text' ^ "# added by hand\nretries = 5\n")
    in
    let* bindings' = Bx.get_b in
    Fmt.pr "@.== bindings after the human edit ==@.";
    print_bindings bindings';
    Bx.return ()
  in
  let (), final = Bx.run session original in

  (* Spot-check the laws on this very file. *)
  let open Bx.Infix in
  let (), same = Bx.run (Bx.get_b >>= Bx.set_b) final in
  Fmt.pr "@.law check (GS): putting back unchanged bindings is a no-op: %b@."
    (String.equal same final);

  (* The focused per-key lens, for point edits. *)
  let port = Config_lens.value_of "port" in
  Fmt.pr "law check (focus): port = %s@."
    (Option.value ~default:"?" (Lens.get port final))
