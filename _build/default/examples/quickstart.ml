(* Quickstart: from an asymmetric lens to an entangled state monad.

   Build a lens focusing a record field, lift it to a set-bx (Lemma 4 of
   the paper), and watch the two views read and write the same hidden
   state.  Run with:  dune exec examples/quickstart.exe  *)

type account = { owner : string; balance : int }

let owner_lens : (account, string) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"owner"
    ~get:(fun a -> a.owner)
    ~put:(fun a owner -> { a with owner })
    ()

(* Lemma 4: the lens induces a set-bx between the whole account (side A)
   and the owner name (side B), entangled through the account state. *)
module Bx = Esm_core.Of_lens.Make (struct
  type s = account
  type v = string

  let lens = owner_lens
  let equal_s a1 a2 = a1.owner = a2.owner && a1.balance = a2.balance
end)

let () =
  let initial = { owner = "ada"; balance = 100 } in

  (* A monadic program over the bx: read both views, update the B side,
     observe the A side change. *)
  let open Bx.Syntax in
  let program =
    let* account = Bx.get_a in
    let* name = Bx.get_b in
    Fmt.pr "initial:   A = {owner=%s; balance=%d},  B = %s@."
      account.owner account.balance name;

    (* Setting the B view rewrites the entangled A state... *)
    let* () = Bx.set_b "grace" in
    let* account' = Bx.get_a in
    Fmt.pr "set_b %S:  A = {owner=%s; balance=%d}   <- A changed!@."
      "grace" account'.owner account'.balance;

    (* ...and setting A rewrites what B sees. *)
    let* () = Bx.set_a { owner = "alan"; balance = 7 } in
    let* name' = Bx.get_b in
    Fmt.pr "set_a ...: B = %s                        <- B changed!@." name';
    Bx.return ()
  in
  let (), final = Bx.run program initial in
  Fmt.pr "final state: {owner=%s; balance=%d}@." final.owner final.balance;

  (* The derived put-bx (Lemma 1): put on one side returns the updated
     opposite view in one step. *)
  let module Put = Esm_core.Translate.Set_to_put_stateful (Bx) in
  let name, _ = Put.run (Put.put_ab { owner = "barbara"; balance = 3 }) final in
  Fmt.pr "put_ab {owner=barbara}: returns B = %s@." name
