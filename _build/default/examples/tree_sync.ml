(* Hierarchical document sync via tree lenses.

   The paper's introduction lists "XML files, abstract syntax trees" among
   the models a bx keeps consistent.  Here a bookmarks document (a
   named-edge tree, after Foster et al.) is synchronised with a simplified
   view: the "meta" subtree is hidden and every entry is renamed, using
   the tree-lens combinators — and the whole pipeline is lifted to an
   entangled state monad, so edits to the simplified view flow back into
   the full document without touching the hidden parts.  Run with:
     dune exec examples/tree_sync.exe  *)

open Esm_lens

let doc =
  Tree.node
    [
      ( "bookmarks",
        Tree.node
          [
            ("ocaml", Tree.value "https://ocaml.org");
            ("bx", Tree.value "http://bx-community.wikidot.com");
          ] );
      ( "meta",
        Tree.node
          [ ("created", Tree.value "2014-03-28"); ("version", Tree.value "3") ]
      );
    ]

(* View: hide "meta", then rename "bookmarks" to "links". *)
let view_lens =
  Lens.(
    Tree.prune "meta" ~default:Tree.empty
    // Tree.rename "bookmarks" "links")

module Bx = Esm_core.Of_lens.Make (struct
  type s = Tree.t
  type v = Tree.t

  let lens = view_lens
  let equal_s = Tree.equal
end)

let () =
  Fmt.pr "== full document (side A) ==@.%s@.@." (Tree.to_string doc);

  let open Bx.Syntax in
  let session =
    let* v = Bx.get_b in
    Fmt.pr "== simplified view (side B): meta hidden, edge renamed ==@.%s@.@."
      (Tree.to_string v);

    (* Edit the view: add a bookmark inside "links". *)
    let v' =
      Tree.bind_edge "links"
        (Tree.bind_edge "edbt" (Tree.value "https://edbt.org")
           (Option.get (Tree.lookup "links" v)))
        v
    in
    let* () = Bx.set_b v' in
    let* doc' = Bx.get_a in
    Fmt.pr "== after set_b: bookmark added, meta RESTORED untouched ==@.%s@.@."
      (Tree.to_string doc');

    (* Edit the document: bump the version in the hidden subtree. *)
    let* current = Bx.get_a in
    let* () =
      Bx.set_a
        (Tree.bind_edge "meta"
           (Tree.bind_edge "version" (Tree.value "4")
              (Option.get (Tree.lookup "meta" current)))
           current)
    in
    let* v'' = Bx.get_b in
    Fmt.pr "== after set_a bumping meta.version: the view is UNCHANGED ==@.%s@."
      (Tree.to_string v'');
    Bx.return ()
  in
  let (), final = Bx.run session doc in
  Fmt.pr "@.final document:@.%s@." (Tree.to_string final);

  (* Law spot-checks on the document instance. *)
  let open Bx.Infix in
  let (), s1 = Bx.run (Bx.get_b >>= Bx.set_b) doc in
  Fmt.pr "@.law check (GS): %b@." (Tree.equal s1 doc)
