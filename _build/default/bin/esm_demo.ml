(* esm-demo: command-line driver for the entangled-state-monads library.

   Subcommands:
     laws   — smoke-check the bx laws across the built-in instances
     sync   — interpret a ;-separated op script against a chosen instance
     info   — print the instance inventory and the paper mapping  *)

open Cmdliner
open Esm_core

(* ------------------------------------------------------------------ *)
(* The built-in demo instances: int <-> int bx over various semantics  *)
(* ------------------------------------------------------------------ *)

let parity : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1 - (2 * (b land 1)))
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1 - (2 * (a land 1)))
    ()

let instances :
    (string * (string * (int, int) Concrete.packed)) list =
  [
    ( "pair",
      ( "independent pair state (Section 3.4): sets commute",
        Concrete.pack
          ~bx:(Concrete.pair () : (int, int, int * int) Concrete.set_bx)
          ~init:(0, 0)
          ~eq_state:Esm_laws.Equality.(pair int int) ) );
    ( "parity",
      ( "algebraic bx (Lemma 5): consistency = same parity",
        Concrete.pack
          ~bx:(Concrete.of_algebraic parity)
          ~init:(0, 0)
          ~eq_state:Esm_laws.Equality.(pair int int) ) );
    ( "shift",
      ( "symmetric-lens iso (Lemma 6): b = a + 100",
        Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal ~eq_b:Int.equal
          (Esm_symlens.Symlens.of_iso ~name:"shift"
             (fun x -> x + 100)
             (fun x -> x - 100)) ) );
    ( "journal",
      ( "journalled parity bx: lawful but not overwriteable",
        Concrete.pack
          ~bx:
            (Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal
               (Concrete.of_algebraic parity))
          ~init:(Journal.initial (0, 0))
          ~eq_state:
            (Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
               ~eq_s:Esm_laws.Equality.(pair int int)) ) );
  ]

let instance_conv =
  let parse s =
    match List.assoc_opt s instances with
    | Some _ -> Ok s
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown instance %S (expected: %s)" s
               (String.concat ", " (List.map fst instances))))
  in
  Arg.conv (parse, Format.pp_print_string)

(* ------------------------------------------------------------------ *)
(* laws: sampled smoke checks via the Certify API                      *)
(* ------------------------------------------------------------------ *)

let check_laws name (packed : (int, int) Concrete.packed) =
  let values = [ -7; -2; 0; 1; 2; 9; 10 ] in
  let report =
    Certify.certify ~values_a:values ~values_b:values ~eq_a:Int.equal
      ~eq_b:Int.equal ~show_a:string_of_int ~show_b:string_of_int packed
  in
  let mark law =
    match
      List.find_opt (fun v -> String.equal v.Certify.law law) report.Certify.verdicts
    with
    | Some v -> if v.Certify.holds then "yes" else "NO "
    | None -> "?  "
  in
  Fmt.pr "  %-8s  GS:%s %s  SG:%s %s  SS(a):%s  commute:%s@." name
    (mark "GS_a") (mark "GS_b") (mark "SG_a") (mark "SG_b") (mark "SS_a")
    (mark "commute")

let laws_cmd =
  let run () =
    Fmt.pr "set-bx law smoke check (sampled; see `dune runtest` for the full suites)@.";
    Fmt.pr "  instance  (GS) set(get)=id     (SG) get(set v)=v  (SS) overwrite  sets commute@.";
    List.iter (fun (name, (_, packed)) -> check_laws name packed) instances;
    Fmt.pr
      "@.reading: every instance is a lawful set-bx; only `pair` commutes \
       (Section 3.4),@.and `journal` is not overwriteable (history is part \
       of the hidden state).@."
  in
  Cmd.v (Cmd.info "laws" ~doc:"Smoke-check the set-bx laws on the built-in instances")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* sync: interpret an op script                                        *)
(* ------------------------------------------------------------------ *)

let parse_ops (s : string) : (int, int) Program.op list =
  String.split_on_char ';' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun tok ->
         let tok = String.trim tok in
         match String.split_on_char '=' tok with
         | [ "a" ] | [ "geta" ] -> Program.Get_a
         | [ "b" ] | [ "getb" ] -> Program.Get_b
         | [ "a"; v ] -> Program.Set_a (int_of_string (String.trim v))
         | [ "b"; v ] -> Program.Set_b (int_of_string (String.trim v))
         | _ -> failwith (Printf.sprintf "cannot parse op %S" tok))

let sync_cmd =
  let instance =
    Arg.(
      value
      & opt instance_conv "parity"
      & info [ "i"; "instance" ] ~docv:"NAME"
          ~doc:"Instance to run against (pair, parity, shift, journal).")
  in
  let script =
    Arg.(
      value
      & pos 0 string "a=3; getb; b=10; geta"
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Semicolon-separated ops: a=N / b=N set a side, geta / getb read.")
  in
  let run name script =
    let desc, packed = List.assoc name instances in
    Fmt.pr "instance %s: %s@." name desc;
    let ops = parse_ops script in
    let obs = Program.observe packed ops in
    List.iter2
      (fun op ob ->
        match (op, ob) with
        | Program.Set_a v, Program.Did_set -> Fmt.pr "  set_a %-4d -> ()@." v
        | Program.Set_b v, Program.Did_set -> Fmt.pr "  set_b %-4d -> ()@." v
        | Program.Get_a, Program.Saw_a v -> Fmt.pr "  get_a      -> %d@." v
        | Program.Get_b, Program.Saw_b v -> Fmt.pr "  get_b      -> %d@." v
        | _ -> Fmt.pr "  (unexpected observation)@.")
      ops obs
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Interpret a get/set script against a built-in bx instance")
    Term.(const run $ instance $ script)

(* ------------------------------------------------------------------ *)
(* query: run the pipeline query language on the demo database         *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let open Esm_relational in
  let q_arg =
    Arg.(
      value
      & pos 0 string "employees | where dept = \"Engineering\" | select id, name, salary"
      & info [] ~docv:"QUERY"
          ~doc:
            "Pipeline query over the demo tables `employees` and `depts`, \
             e.g. 'employees | where salary < 60000 | select name'.")
  in
  let size =
    Arg.(
      value & opt int 12
      & info [ "n"; "size" ] ~docv:"N" ~doc:"Rows in the demo employees table.")
  in
  let run q size =
    let employees = Workload.employees ~seed:42 ~size in
    let depts =
      Table.of_lists
        (Schema.make [ ("dept", Value.Tstr); ("floor", Value.Tint) ])
        [
          [ Value.Str "Engineering"; Value.Int 3 ];
          [ Value.Str "Sales"; Value.Int 1 ];
          [ Value.Str "Support"; Value.Int 2 ];
          [ Value.Str "Finance"; Value.Int 4 ];
          [ Value.Str "Ops"; Value.Int 5 ];
        ]
    in
    let env = function
      | "employees" -> employees
      | "depts" -> depts
      | name -> Table.errorf "unknown table %s (try employees or depts)" name
    in
    match Query.run env q with
    | result ->
        Fmt.pr "%s@." (Table.to_string result);
        Fmt.pr "(%d rows)@." (Table.cardinality result)
    | exception Query.Parse_error msg -> Fmt.epr "parse error: %s@." msg
    | exception Table.Table_error msg -> Fmt.epr "error: %s@." msg
    | exception Schema.Schema_error msg -> Fmt.epr "schema error: %s@." msg
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a pipeline query against the demo tables")
    Term.(const run $ q_arg $ size)

(* ------------------------------------------------------------------ *)
(* view: compile a view definition to a lens and edit through it       *)
(* ------------------------------------------------------------------ *)

let view_cmd =
  let open Esm_relational in
  let q_arg =
    Arg.(
      value
      & pos 0 string "employees | where dept = \"Engineering\" | select id, name"
      & info [] ~docv:"VIEW"
          ~doc:
            "Single-base pipeline view definition over `employees` \
             (where/select/rename stages only).")
  in
  let run q =
    let employees = Workload.employees ~seed:42 ~size:8 in
    match
      Query.lens_of_string ~schema:Workload.employees_schema ~key:[ "id" ] q
    with
    | lens ->
        let view = Esm_lens.Lens.get lens employees in
        Fmt.pr "== stored table ==@.%s@.@." (Table.to_string employees);
        Fmt.pr "== view ==@.%s@.@." (Table.to_string view);
        (* demonstrate writing back: uppercase every name-ish column of
           the first view row *)
        (match Table.rows view with
        | first :: _ ->
            let vschema = Table.schema view in
            let edited_row =
              List.fold_left
                (fun r (col, ty) ->
                  match (ty, Row.get vschema r col) with
                  | Value.Tstr, Value.Str s ->
                      Row.set vschema r col
                        (Value.Str (String.uppercase_ascii s))
                  | _ -> r)
                first (Schema.columns vschema)
            in
            let view' =
              Table.insert (Table.delete view first) edited_row
            in
            let employees' = Esm_lens.Lens.put lens employees view' in
            Fmt.pr
              "== after editing the first view row (uppercased strings) and \
               putting back ==@.%s@."
              (Table.to_string employees');
            Fmt.pr
              "note: columns outside the view were recovered from the old \
               store by key@."
        | [] -> Fmt.pr "(empty view: nothing to write back)@.")
    | exception Query.Parse_error msg -> Fmt.epr "parse error: %s@." msg
    | exception Query.Not_updatable msg ->
        Fmt.epr "view is not updatable: %s@." msg
  in
  Cmd.v
    (Cmd.info "view"
       ~doc:"Compile a view definition into a lens and demo a write-back")
    Term.(const run $ q_arg)

(* ------------------------------------------------------------------ *)
(* quotient: bisimulation minimisation of the built-in instances       *)
(* ------------------------------------------------------------------ *)

let quotient_cmd =
  let run () =
    Fmt.pr
      "bisimulation quotients over the alphabet {0..4} (see \
       Esm_core.Minimize)@.";
    Fmt.pr "  %-8s  %10s  %8s  %s@." "instance" "reachable" "classes"
      "collapsed";
    let values = [ 0; 1; 2; 3; 4 ] in
    List.iter
      (fun (name, (_, packed)) ->
        let r =
          Minimize.minimize ~max_states:4096 ~values_a:values
            ~values_b:values ~eq_a:Int.equal ~eq_b:Int.equal packed
        in
        Fmt.pr "  %-8s  %10d  %8d  %s%s@." name r.Minimize.reachable
          r.Minimize.classes
          (if r.Minimize.reachable > r.Minimize.classes then "yes" else "no")
          (if r.Minimize.complete then "" else "  (exploration truncated)"))
      instances;
    Fmt.pr
      "@.reading: `journal` accumulates unbounded history, so its raw \
       state space does not close;@.the others are finite, and any \
       unobservable hidden structure collapses into the quotient.@."
  in
  Cmd.v
    (Cmd.info "quotient"
       ~doc:"Minimise the built-in instances by bisimulation")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let run () =
    Fmt.pr "entangled-state-monads: OCaml reproduction of 'Entangled State \
            Monads' (BX 2014)@.@.";
    Fmt.pr "paper construct        -> module@.";
    List.iter
      (fun (a, b) -> Fmt.pr "  %-20s -> %s@." a b)
      [
        ("set-bx (S3.1)", "Esm_core.Bx_intf.SET_BX");
        ("put-bx (S3.2)", "Esm_core.Bx_intf.PUT_BX");
        ("set2pp/pp2set (S3.3)", "Esm_core.Translate");
        ("entanglement (S3.4)", "Esm_core.Pair_bx + Bx_laws.sets_commute");
        ("Lemma 4 (lenses)", "Esm_core.Of_lens");
        ("Lemma 5 (algebraic)", "Esm_core.Of_algebraic");
        ("Lemma 6 (symmetric)", "Esm_core.Of_symmetric");
        ("stateful bx (S4)", "Esm_core.Effectful");
        ("composition (S5)", "Esm_core.Compose");
        ("equivalence (S5)", "Esm_core.Equivalence");
      ];
    Fmt.pr "@.built-in demo instances for `esm-demo sync`:@.";
    List.iter
      (fun (name, (desc, _)) -> Fmt.pr "  %-8s %s@." name desc)
      instances
  in
  Cmd.v (Cmd.info "info" ~doc:"Show the paper-to-module mapping") Term.(const run $ const ())

let () =
  let doc = "demos for the entangled-state-monads library" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "esm-demo" ~doc)
          [ laws_cmd; sync_cmd; query_cmd; view_cmd; quotient_cmd; info_cmd ]))
