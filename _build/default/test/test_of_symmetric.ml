(** Lemma 6: a symmetric lens yields a put-bx over the state of
    consistent triples (a, b, c).

    Validated for the of_lens-embedded field lens, an iso lens, a
    composition, and a tensor — plus invariant preservation and the
    behavioural reading of the put operations. *)

open Esm_core

(* Instance 1: person.name via of_lens embedding. *)
module Name_instance = struct
  include
    (val Esm_symlens.Symlens.to_instance Fixtures.name_symlens
      : Esm_symlens.Symlens.INSTANCE
        with type a = Fixtures.person
         and type b = string)
end

module Name_put = Of_symmetric.Make (Name_instance) (struct
  let equal_a = Fixtures.equal_person
  let equal_b = String.equal
end)

module Name_laws = Bx_laws.Put_bx (Name_put)

(* Instance 2: the doubling iso. *)
module Double_instance = struct
  include
    (val Esm_symlens.Symlens.to_instance Fixtures.double_iso
      : Esm_symlens.Symlens.INSTANCE with type a = int and type b = int)
end

module Double_put = Of_symmetric.Make (Double_instance) (struct
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Double_laws = Bx_laws.Put_bx (Double_put)

(* Instance 3: composition double ; double. *)
module Quad_instance = struct
  include
    (val Esm_symlens.Symlens.to_instance
           (Esm_symlens.Symlens.compose Fixtures.double_iso
              Fixtures.double_iso)
      : Esm_symlens.Symlens.INSTANCE with type a = int and type b = int)
end

module Quad_put = Of_symmetric.Make (Quad_instance) (struct
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Quad_laws = Bx_laws.Put_bx (Quad_put)

(* Generators of consistent triples: reachable states only, built by
   seeding with a value and replaying a random walk of puts. *)

let gen_state_of (type a b c)
    (module I : Esm_symlens.Symlens.INSTANCE
      with type a = a
       and type b = b
       and type c = c) ~(seed : a QCheck.Gen.t) ~(moves_a : a QCheck.Gen.t)
    ~(moves_b : b QCheck.Gen.t) ~(print : a * b * c -> string) :
    (a * b * c) QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* a0 = seed in
    let b0, c0 = I.put_r a0 I.init in
    let* walk =
      list_size (int_bound 6)
        (oneof [ map Either.left moves_a; map Either.right moves_b ])
    in
    return
      (List.fold_left
         (fun (_, _, c) -> function
           | Either.Left a' ->
               let b', c' = I.put_r a' c in
               (a', b', c')
           | Either.Right b' ->
               let a', c' = I.put_l b' c in
               (a', b', c'))
         (a0, b0, c0) walk)
  in
  QCheck.make ~print gen

let gen_name_state =
  gen_state_of
    (module Name_instance)
    ~seed:Fixtures.gen_person.QCheck.gen ~moves_a:Fixtures.gen_person.QCheck.gen
    ~moves_b:Helpers.short_string.QCheck.gen
    ~print:(fun (p, n, _) -> Printf.sprintf "(%s, %s, _)" p.Fixtures.name n)

let gen_double_state =
  gen_state_of
    (module Double_instance)
    ~seed:QCheck.Gen.small_int ~moves_a:QCheck.Gen.small_int
    ~moves_b:(QCheck.Gen.map (fun x -> 2 * x) QCheck.Gen.small_int)
    ~print:(fun (a, b, _) -> Printf.sprintf "(%d, %d, ())" a b)

let gen_quad_state =
  gen_state_of
    (module Quad_instance)
    ~seed:QCheck.Gen.small_int ~moves_a:QCheck.Gen.small_int
    ~moves_b:(QCheck.Gen.map (fun x -> 4 * x) QCheck.Gen.small_int)
    ~print:(fun (a, b, _) -> Printf.sprintf "(%d, %d, _)" a b)

(* Instance 4: list_map through Lemma 6 — synchronised LISTS of people
   and names over a list complement. *)
module Lists_instance = struct
  include
    (val Esm_symlens.Symlens.to_instance
           (Esm_symlens.Symlens.list_map Fixtures.name_symlens)
      : Esm_symlens.Symlens.INSTANCE
        with type a = Fixtures.person list
         and type b = string list)
end

module Lists_put = Of_symmetric.Make (Lists_instance) (struct
  let equal_a = Esm_laws.Equality.list Fixtures.equal_person
  let equal_b = Esm_laws.Equality.list String.equal
end)

module Lists_laws = Bx_laws.Put_bx (Lists_put)

let gen_lists_state =
  gen_state_of
    (module Lists_instance)
    ~seed:(QCheck.Gen.small_list Fixtures.gen_person.QCheck.gen)
    ~moves_a:(QCheck.Gen.small_list Fixtures.gen_person.QCheck.gen)
    ~moves_b:(QCheck.Gen.small_list Helpers.short_string.QCheck.gen)
    ~print:(fun (ps, ns, _) ->
      Printf.sprintf "(%d people, %d names, _)" (List.length ps)
        (List.length ns))

let law_tests =
  List.concat
    [
      Lists_laws.well_behaved
        (Lists_laws.config ~count:150 ~name:"of_symmetric(list_map name)"
           ~gen_state:gen_lists_state
           ~gen_a:(QCheck.small_list Fixtures.gen_person)
           ~gen_b:(QCheck.small_list Helpers.short_string)
           ~eq_a:(Esm_laws.Equality.list Fixtures.equal_person)
           ~eq_b:(Esm_laws.Equality.list String.equal)
           ());
      Name_laws.overwriteable
        (Name_laws.config ~name:"of_symmetric(name)" ~gen_state:gen_name_state
           ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string
           ~eq_a:Fixtures.equal_person ~eq_b:String.equal ());
      Double_laws.overwriteable
        (Double_laws.config ~name:"of_symmetric(double)"
           ~gen_state:gen_double_state ~gen_a:Helpers.small_int
           ~gen_b:(QCheck.map (fun x -> 2 * x) Helpers.small_int)
           ~eq_a:Int.equal ~eq_b:Int.equal ());
      Quad_laws.overwriteable
        (Quad_laws.config ~name:"of_symmetric(double;double)"
           ~gen_state:gen_quad_state ~gen_a:Helpers.small_int
           ~gen_b:(QCheck.map (fun x -> 4 * x) Helpers.small_int)
           ~eq_a:Int.equal ~eq_b:Int.equal ());
    ]

let invariant_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"of_symmetric: put_ab preserves consistency"
      (QCheck.pair gen_name_state Fixtures.gen_person)
      (fun (s, a) ->
        Name_put.consistent (snd (Name_put.run (Name_put.put_ab a) s)));
    QCheck.Test.make ~count:300
      ~name:"of_symmetric: put_ba preserves consistency"
      (QCheck.pair gen_name_state Helpers.short_string)
      (fun (s, b) ->
        Name_put.consistent (snd (Name_put.run (Name_put.put_ba b) s)));
    QCheck.Test.make ~count:300 ~name:"of_symmetric: initial is consistent"
      Fixtures.gen_person
      (fun p -> Name_put.consistent (Name_put.initial ~seed_a:p));
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "put_ab returns the propagated view" `Quick (fun () ->
        let s = Double_put.initial ~seed_a:5 in
        let b, _ = Double_put.run (Double_put.put_ab 21) s in
        check int "doubled" 42 b);
    test_case "put_ba pushes back through the complement" `Quick (fun () ->
        let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" } in
        let s = Name_put.initial ~seed_a:p0 in
        let p1, _ = Name_put.run (Name_put.put_ba "grace") s in
        check string "name" "grace" p1.Fixtures.name;
        check int "age preserved through complement" 36 p1.Fixtures.age);
    test_case "get_a/get_b project the triple" `Quick (fun () ->
        let s = Double_put.initial ~seed_a:3 in
        let (a, b), _ =
          Double_put.run (Double_put.product Double_put.get_a Double_put.get_b) s
        in
        check int "a" 3 a;
        check int "b" 6 b);
  ]

let suite = unit_tests @ Helpers.q (law_tests @ invariant_tests)
