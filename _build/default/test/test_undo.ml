(** The undo wrapper: lawful set-bx (minus (SS)), with rollback through
    the checkpointed witness structure. *)

open Esm_core

let base = Concrete.of_algebraic Fixtures.parity_undoable
let wrapped = Journal.Undo.wrap ~eq_a:Int.equal ~eq_b:Int.equal base
let eq_pair = Esm_laws.Equality.(pair int int)
let eq_state = Journal.Undo.equal_state ~eq_s:eq_pair

let gen_state : (int * int) Journal.Undo.state QCheck.arbitrary =
  QCheck.make
    ~print:(fun st -> Printf.sprintf "depth %d" (Journal.Undo.depth st))
    QCheck.Gen.(
      let* s0 = Fixtures.gen_parity_consistent.QCheck.gen in
      let* walk = list_size (int_bound 5) (pair bool small_signed_int) in
      return
        (List.fold_left
           (fun st (side, v) ->
             if side then wrapped.Concrete.set_a v st
             else wrapped.Concrete.set_b v st)
           (Journal.Undo.initial s0) walk))

let cfg =
  Concrete_laws.config ~name:"undo(parity)" ~gen_state
    ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
    ~eq_b:Int.equal ~eq_state ()

let law_tests = Concrete_laws.well_behaved cfg wrapped

let negative_tests =
  [
    Helpers.expect_law_failure "undo wrapper is not overwriteable"
      (Concrete_laws.ss_a cfg wrapped);
  ]

let prop_tests =
  [
    QCheck.Test.make ~count:500 ~name:"undo reverts the last effective set"
      (QCheck.pair gen_state Helpers.small_int)
      (fun (st, a) ->
        let st' = wrapped.Concrete.set_a a st in
        if Journal.Undo.depth st' = Journal.Undo.depth st then
          (* no-op set: nothing to undo beyond what was there *)
          eq_state st st'
        else
          match Journal.Undo.undo st' with
          | Some st'' -> eq_state st st''
          | None -> false);
    QCheck.Test.make ~count:500 ~name:"undoing to the bottom empties history"
      gen_state
      (fun st ->
        let rec drain st =
          match Journal.Undo.undo st with Some st' -> drain st' | None -> st
        in
        Journal.Undo.depth (drain st) = 0);
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "depth counts effective updates only" `Quick (fun () ->
        let st =
          Journal.Undo.initial (0, 0)
          |> wrapped.Concrete.set_a 2
          |> wrapped.Concrete.set_a 2 (* no-op *)
          |> wrapped.Concrete.set_b 5
        in
        check int "two checkpoints" 2 (Journal.Undo.depth st));
    test_case "undo at the beginning returns None" `Quick (fun () ->
        check bool "none" true
          (Journal.Undo.undo (Journal.Undo.initial (0, 0)) = None));
    test_case "views read the current state" `Quick (fun () ->
        let st = wrapped.Concrete.set_a 8 (Journal.Undo.initial (1, 1)) in
        check int "a" 8 (wrapped.Concrete.get_a st));
  ]

let suite = unit_tests @ Helpers.q (law_tests @ prop_tests) @ negative_tests
