(** Probabilistic bx (paper §5: "probabilistic choice"): the Dist monad
    itself, then the set-bx laws in the distribution reading, mass
    conservation, and the expected weighting of repairs. *)

open Esm_core
module Dist = Esm_monad.Dist

(* --- the Dist monad ------------------------------------------------ *)

let deq = Dist.equal ~compare_outcome:Int.compare

let dist_unit_tests =
  let open Alcotest in
  [
    test_case "uniform splits mass equally" `Quick (fun () ->
        let d = Dist.uniform [ 1; 2; 3; 4 ] in
        check (float 1e-9) "p(even)" 0.5 (Dist.prob (fun x -> x mod 2 = 0) d));
    test_case "bind multiplies along branches" `Quick (fun () ->
        let coin = Dist.uniform [ 0; 1 ] in
        let two = Dist.bind coin (fun x -> Dist.bind coin (fun y -> Dist.return (x + y))) in
        check (float 1e-9) "p(sum=1)" 0.5 (Dist.prob (( = ) 1) two);
        check (float 1e-9) "p(sum=2)" 0.25 (Dist.prob (( = ) 2) two));
    test_case "normalise merges duplicate outcomes" `Quick (fun () ->
        let d = Dist.weighted [ (1, 0.25); (1, 0.25); (2, 0.5) ] in
        check int "two points" 2
          (List.length (Dist.normalise ~compare_outcome:Int.compare d)));
    test_case "choice mixes two distributions" `Quick (fun () ->
        let d = Dist.choice 0.3 (Dist.return 1) (Dist.return 2) in
        check (float 1e-9) "p(1)" 0.3 (Dist.prob (( = ) 1) d));
    test_case "expect computes the mean" `Quick (fun () ->
        check (float 1e-9) "mean" 2.5
          (Dist.expect float_of_int (Dist.uniform [ 1; 2; 3; 4 ])));
  ]

let dist_law_tests =
  [
    QCheck.Test.make ~count:300 ~name:"dist: left unit"
      Helpers.small_int
      (fun x ->
        let f y = Dist.uniform [ y; y + 1 ] in
        deq (Dist.bind (Dist.return x) f) (f x));
    QCheck.Test.make ~count:300 ~name:"dist: right unit"
      (QCheck.small_list Helpers.small_int)
      (fun xs ->
        QCheck.assume (xs <> []);
        let d = Dist.uniform xs in
        deq (Dist.bind d Dist.return) d);
    QCheck.Test.make ~count:300 ~name:"dist: associativity"
      (QCheck.small_list Helpers.small_int)
      (fun xs ->
        QCheck.assume (xs <> []);
        let d = Dist.uniform xs in
        let f y = Dist.uniform [ y; -y ] in
        let g y = Dist.return (y * 2) in
        deq
          (Dist.bind (Dist.bind d f) g)
          (Dist.bind d (fun y -> Dist.bind (f y) g)));
    QCheck.Test.make ~count:300 ~name:"dist: bind conserves mass"
      (QCheck.small_list Helpers.small_int)
      (fun xs ->
        QCheck.assume (xs <> []);
        let d = Dist.bind (Dist.uniform xs) (fun y -> Dist.uniform [ y; y + 1 ]) in
        Float.abs (Dist.mass d -. 1.0) < 1e-9);
  ]

(* --- probabilistic bx ---------------------------------------------- *)

(* Parity consistency; an inconsistent update repairs by +1 with
   probability 0.7 and -1 with probability 0.3 (biased minimal repair). *)
module Pbx = Prob.Make (struct
  type ta = int
  type tb = int

  let consistent a b = (a - b) mod 2 = 0
  let fwd_dist _ b = Dist.weighted [ (b + 1, 0.7); (b - 1, 0.3) ]
  let bwd_dist a _ = Dist.weighted [ (a + 1, 0.7); (a - 1, 0.3) ]
  let equal_a = Int.equal
  let equal_b = Int.equal
  let compare_state = compare
end)

module Pbx_laws = Bx_laws.Set_bx (Pbx)

let law_tests =
  Pbx_laws.well_behaved
    (Pbx_laws.config ~name:"prob(parity)"
       ~gen_state:Fixtures.gen_parity_consistent ~gen_a:Helpers.small_int
       ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ())

let prop_tests =
  [
    QCheck.Test.make ~count:500 ~name:"prob: set conserves probability mass"
      (QCheck.pair Fixtures.gen_parity_consistent Helpers.small_int)
      (fun (s, a) ->
        Float.abs (Dist.mass (Pbx.distribution (Pbx.set_a a) s) -. 1.0)
        < 1e-9);
    QCheck.Test.make ~count:500 ~name:"prob: every outcome is consistent"
      (QCheck.pair Fixtures.gen_parity_consistent Helpers.small_int)
      (fun (s, a) ->
        List.for_all
          (fun (((), s'), _) -> Pbx.consistent s')
          (Pbx.distribution (Pbx.set_a a) s));
    QCheck.Test.make ~count:500
      ~name:"prob: consistent updates are deterministic (hippocratic)"
      Fixtures.gen_parity_consistent
      (fun s ->
        List.length (Pbx.distribution (Pbx.bind Pbx.get_a Pbx.set_a) s) = 1);
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "inconsistent set splits 70/30" `Quick (fun () ->
        let d = Pbx.distribution (Pbx.set_a 1) (0, 0) in
        let p_b1 =
          List.fold_left
            (fun acc (((), (_, b)), p) -> if b = 1 then acc +. p else acc)
            0.0 d
        in
        check (float 1e-9) "p(b=1)" 0.7 p_b1);
    test_case "two biased sets compound the bias" `Quick (fun () ->
        let open Pbx.Infix in
        let d = Pbx.distribution (Pbx.set_a 1 >> Pbx.set_b 0) (0, 0) in
        (* after set_a 1: b=1 w.p. .7, b=-1 w.p. .3 (both already make
           (1, b) consistent with parity of 1); then set_b 0 is
           inconsistent with a=1, so a repairs to 2 (.7) or 0 (.3). *)
        let p_a2 =
          List.fold_left
            (fun acc (((), (a, _)), p) -> if a = 2 then acc +. p else acc)
            0.0 d
        in
        check (float 1e-9) "p(a=2)" 0.7 p_a2);
  ]

let suite =
  dist_unit_tests
  @ Helpers.q (dist_law_tests @ law_tests @ prop_tests)
  @ unit_tests
