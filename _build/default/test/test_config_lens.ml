(** The textual config-file lens: comment/layout preservation, the lens
    laws on distinct-key sources, and the per-key focused lens — plus a
    lift through Lemma 4 into an entangled state monad over raw text. *)

open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

let sample =
  "# database settings\n\
   host = localhost\n\
   port=5432\n\
   \n\
   ; feature flags\n\
   \tdebug  =  true\n"

let unit_tests =
  [
    test "get extracts bindings in order" `Quick (fun () ->
        check
          Alcotest.(list (pair string string))
          "bindings"
          [ ("host", "localhost"); ("port", "5432"); ("debug", "true") ]
          (Lens.get Config_lens.bindings sample));
    test "put preserves comments, blanks and layout" `Quick (fun () ->
        let updated =
          Lens.put Config_lens.bindings sample
            [ ("host", "db.internal"); ("port", "5432"); ("debug", "false") ]
        in
        check Alcotest.string "text"
          "# database settings\n\
           host = db.internal\n\
           port=5432\n\
           \n\
           ; feature flags\n\
           \tdebug  =  false\n"
          updated);
    test "deleting a binding removes exactly its line" `Quick (fun () ->
        let updated =
          Lens.put Config_lens.bindings sample
            [ ("host", "localhost"); ("debug", "true") ]
        in
        check Alcotest.bool "port gone" true
          (not
             (List.mem_assoc "port" (Lens.get Config_lens.bindings updated)));
        check Alcotest.bool "comment survives" true
          (String.length updated > 0
          && Lens.get Config_lens.bindings updated
             = [ ("host", "localhost"); ("debug", "true") ]));
    test "new bindings are appended before the trailing newline" `Quick
      (fun () ->
        let updated =
          Lens.put Config_lens.bindings sample
            [
              ("host", "localhost"); ("port", "5432"); ("debug", "true");
              ("timeout", "30");
            ]
        in
        check
          Alcotest.(list (pair string string))
          "appended"
          [
            ("host", "localhost"); ("port", "5432"); ("debug", "true");
            ("timeout", "30");
          ]
          (Lens.get Config_lens.bindings updated);
        check Alcotest.bool "still ends with newline" true
          (String.length updated > 0
          && updated.[String.length updated - 1] = '\n'));
    test "non-binding lines without '=' are verbatim" `Quick (fun () ->
        let text = "just some text\nkey = v\n" in
        check
          Alcotest.(list (pair string string))
          "one binding" [ ("key", "v") ]
          (Lens.get Config_lens.bindings text));
    test "value_of focuses a single key" `Quick (fun () ->
        let l = Config_lens.value_of "port" in
        check Alcotest.(option string) "get" (Some "5432") (Lens.get l sample);
        let updated = Lens.put l sample (Some "6543") in
        check Alcotest.(option string) "updated" (Some "6543")
          (Lens.get l updated);
        check Alcotest.(option string) "others untouched" (Some "localhost")
          (Lens.get (Config_lens.value_of "host") updated));
    test "value_of None deletes the key" `Quick (fun () ->
        let l = Config_lens.value_of "debug" in
        let updated = Lens.put l sample None in
        check Alcotest.(option string) "gone" None (Lens.get l updated));
    test "value_of on an absent key appends" `Quick (fun () ->
        let l = Config_lens.value_of "retries" in
        let updated = Lens.put l sample (Some "3") in
        check Alcotest.(option string) "added" (Some "3") (Lens.get l updated));
  ]

(* ------------------------------------------------------------------ *)
(* Laws on generated configs                                           *)
(* ------------------------------------------------------------------ *)

let keys_pool = [ "alpha"; "beta"; "gamma"; "delta" ]

(* Sources: random interleavings of comments/blanks and distinct-key
   bindings with varied layout. *)
let gen_source : string QCheck.arbitrary =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let* n_keys = int_bound (List.length keys_pool) in
      let keys = List.filteri (fun i _ -> i < n_keys) keys_pool in
      let* values =
        flatten_l
          (List.map
             (fun _ -> string_size ~gen:(char_range 'a' 'z') (int_bound 6))
             keys)
      in
      let* decorations =
        flatten_l
          (List.map
             (fun _ -> oneofl [ ""; "# note"; "; other"; "   " ])
             keys)
      in
      let* spacey = flatten_l (List.map (fun _ -> bool) keys) in
      let lines =
        List.concat
          (List.map2
             (fun (k, v) (deco, sp) ->
               let binding = if sp then k ^ " = " ^ v else k ^ "=" ^ v in
               if deco = "" then [ binding ] else [ deco; binding ])
             (List.combine keys values)
             (List.combine decorations spacey))
      in
      return (String.concat "\n" lines))

(* Views: distinct keys from the pool with fresh values. *)
let gen_view : (string * string) list QCheck.arbitrary =
  QCheck.make
    ~print:(fun kvs ->
      String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
    QCheck.Gen.(
      let* n_keys = int_bound (List.length keys_pool) in
      let keys = List.filteri (fun i _ -> i < n_keys) keys_pool in
      let* values =
        flatten_l
          (List.map
             (fun _ -> string_size ~gen:(char_range 'a' 'z') (int_bound 6))
             keys)
      in
      return (List.combine keys values))

(* Views are morally maps: compare them order-insensitively. *)
let eq_view_as_map kvs1 kvs2 =
  let sort = List.sort compare in
  sort kvs1 = sort kvs2

let law_tests =
  Lens_laws.well_behaved ~count:300 ~name:"config bindings"
    Config_lens.bindings ~gen_s:gen_source ~gen_v:gen_view ~eq_s:String.equal
    ~eq_v:eq_view_as_map
  @ [
      (* PutGet up to order even when the view arrives shuffled: the
         file keeps ITS order, but no binding is lost or changed. *)
      QCheck.Test.make ~count:300
        ~name:"config bindings (PutGet up to order, shuffled views)"
        (QCheck.pair gen_source gen_view)
        (fun (s, v) ->
          let shuffled = List.rev v in
          eq_view_as_map
            (Lens.get Config_lens.bindings
               (Lens.put Config_lens.bindings s shuffled))
            shuffled);
    ]

(* Lemma 4 on raw text: the config file and its bindings as an entangled
   state monad. *)
module Text_bx = Esm_core.Of_lens.Make (struct
  type s = string
  type v = (string * string) list

  let lens = Config_lens.bindings
  let equal_s = String.equal
end)

let monad_tests =
  [
    test "config text and bindings are entangled" `Quick (fun () ->
        let open Text_bx.Infix in
        let text', _ =
          Text_bx.run
            (Text_bx.set_b [ ("host", "prod"); ("port", "80") ]
            >> Text_bx.get_a)
            sample
        in
        check Alcotest.bool "comment preserved" true
          (String.length text' > 0
          &&
          match String.index_opt text' '#' with
          | Some _ -> true
          | None -> false);
        check
          Alcotest.(list (pair string string))
          "view agrees"
          [ ("host", "prod"); ("port", "80") ]
          (Lens.get Config_lens.bindings text'));
  ]

let suite = unit_tests @ monad_tests @ Helpers.q law_tests
