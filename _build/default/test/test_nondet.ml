(** Nondeterministic bx (paper §5: "effects such as ... nondeterminism"):
    the set-bx laws in the outcome-multiset reading, hippocratic
    single-outcome behaviour, consistency of every branch, and the
    expected failure of (SS). *)

open Esm_core

(* Consistency: |a - b| <= 1.  Repairs offer every value within 1 of the
   newly set side — three equally minimal candidates. *)
module Near = Nondet.Make (struct
  type ta = int
  type tb = int

  let consistent a b = abs (a - b) <= 1
  let fwd_choices a _ = [ a - 1; a; a + 1 ]
  let bwd_choices _ b = [ b - 1; b; b + 1 ]
  let equal_a = Int.equal
  let equal_b = Int.equal
  let compare_state = compare
end)

module Near_laws = Bx_laws.Set_bx (Near)

let gen_consistent : (int * int) QCheck.arbitrary =
  QCheck.map
    (fun (a, d) -> (a, a + (d mod 2)))
    (QCheck.pair Helpers.small_int QCheck.small_nat)

let law_tests =
  Near_laws.well_behaved
    (Near_laws.config ~name:"nondet(near)" ~gen_state:gen_consistent
       ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
       ~eq_b:Int.equal ())

let invariant_tests =
  [
    QCheck.Test.make ~count:500
      ~name:"nondet: every branch of set_a is consistent"
      (QCheck.pair gen_consistent Helpers.small_int)
      (fun (s, a) ->
        List.for_all
          (fun ((), s') -> Near.consistent s')
          (Near.outcomes (Near.set_a a) s));
    QCheck.Test.make ~count:500
      ~name:"nondet: hippocratic sets have exactly one outcome"
      gen_consistent
      (fun s ->
        List.length (Near.outcomes (Near.bind Near.get_a Near.set_a) s) = 1);
    QCheck.Test.make ~count:500
      ~name:"nondet: inconsistent set fans out to all minimal repairs"
      (QCheck.pair gen_consistent Helpers.small_int)
      (fun ((a0, b0), a) ->
        let n = List.length (Near.outcomes (Near.set_a a) (a0, b0)) in
        if abs (a - b0) <= 1 then n = 1 else n = 3);
  ]

let negative_tests =
  [
    Helpers.expect_law_failure "nondet bx is not overwriteable"
      (Near_laws.A_cell.ss
         (Near_laws.A_cell.config ~name:"near.A" ~gen_world:gen_consistent
            ~gen_value:Helpers.small_int ~eq_value:Int.equal ()));
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "set far away explores three repairs" `Quick (fun () ->
        let outcomes = Near.outcomes (Near.set_a 10) (0, 0) in
        check int "three branches" 3 (List.length outcomes);
        check bool "all install a=10" true
          (List.for_all (fun ((), (a, _)) -> a = 10) outcomes));
    test_case "bind explores the branch product" `Quick (fun () ->
        let open Near.Infix in
        (* two fan-outs of 3, but states coincide after normalisation to
           the second repair's neighbourhood *)
        let outcomes = Near.outcomes (Near.set_a 10 >> Near.set_b 20) (0, 0) in
        check int "three distinct final states" 3 (List.length outcomes);
        check bool "all install b=20" true
          (List.for_all (fun ((), (_, b)) -> b = 20) outcomes));
  ]

let suite = unit_tests @ Helpers.q (law_tests @ invariant_tests) @ negative_tests
