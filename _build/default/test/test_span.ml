(** Spans of lenses as entangled state monads: the span generalisation
    of Lemma 4.  Laws hold legwise; overlapping legs produce genuine
    entanglement; Of_lens coincides with the identity-legged span. *)

open Esm_core

(* Span with OVERLAPPING legs over a person source: the A view is
   (name, age), the B view is (name, email) — both legs see the name, so
   the two views are entangled through it. *)

let name_age_lens : (Fixtures.person, string * int) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"name*age"
    ~get:(fun p -> (p.Fixtures.name, p.Fixtures.age))
    ~put:(fun p (name, age) -> Fixtures.{ p with name; age })
    ()

let name_email_lens : (Fixtures.person, string * string) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"name*email"
    ~get:(fun p -> (p.Fixtures.name, p.Fixtures.email))
    ~put:(fun p (name, email) -> Fixtures.{ p with name; email })
    ()

let overlap_span = Span.v ~left:name_age_lens ~right:name_email_lens

module Overlap = Span.Make (struct
  type a = string * int
  type b = string * string
  type s = Fixtures.person

  let span = overlap_span
  let equal_s = Fixtures.equal_person
end)

module Overlap_laws = Bx_laws.Set_bx (Overlap)

let gen_name_age = QCheck.pair Helpers.short_string QCheck.small_nat
let gen_name_email = QCheck.pair Helpers.short_string Helpers.short_string

let law_tests =
  Overlap_laws.overwriteable
    (Overlap_laws.config ~name:"span(name*age, name*email)"
       ~gen_state:Fixtures.gen_person ~gen_a:gen_name_age
       ~gen_b:gen_name_email
       ~eq_a:Esm_laws.Equality.(pair string int)
       ~eq_b:Esm_laws.Equality.(pair string string)
       ())

let entanglement_tests =
  [
    (* The shared name makes set_a and set_b non-commuting. *)
    Helpers.expect_law_failure "overlapping span: sets do not commute"
      (Overlap_laws.sets_commute
         (Overlap_laws.config ~name:"span-overlap"
            ~gen_state:Fixtures.gen_person ~gen_a:gen_name_age
            ~gen_b:gen_name_email
            ~eq_a:Esm_laws.Equality.(pair string int)
            ~eq_b:Esm_laws.Equality.(pair string string)
            ()));
  ]

(* Disjoint legs (age | email) DO commute — spans recover the pair-like
   behaviour of Section 3.4 exactly when the legs do not overlap. *)
module Disjoint = Span.Make (struct
  type a = int
  type b = string
  type s = Fixtures.person

  let span = Span.v ~left:Fixtures.age_lens
      ~right:(Esm_lens.Lens.v ~name:"email"
                ~get:(fun p -> p.Fixtures.email)
                ~put:(fun p email -> Fixtures.{ p with email })
                ())

  let equal_s = Fixtures.equal_person
end)

module Disjoint_laws = Bx_laws.Set_bx (Disjoint)

let disjoint_cfg =
  Disjoint_laws.config ~name:"span(age | email)"
    ~gen_state:Fixtures.gen_person ~gen_a:QCheck.small_nat
    ~gen_b:Helpers.short_string ~eq_a:Int.equal ~eq_b:String.equal ()

let disjoint_tests =
  Disjoint_laws.overwriteable disjoint_cfg
  @ [ Disjoint_laws.sets_commute disjoint_cfg ]

(* Of_lens = identity-legged span, observationally. *)
let of_lens_agreement =
  let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" } in
  Equivalence.test ~count:300
    ~name:"Of_lens coincides with the identity-legged span"
    ~eq_a:Fixtures.equal_person ~eq_b:String.equal ~gen_a:Fixtures.gen_person
    ~gen_b:Helpers.short_string
    (Concrete.pack ~bx:(Concrete.of_lens Fixtures.name_lens) ~init:p0
       ~eq_state:Fixtures.equal_person)
    (Concrete.pack
       ~bx:(Span.to_set_bx (Span.of_lens Fixtures.name_lens))
       ~init:p0 ~eq_state:Fixtures.equal_person)

let unit_tests =
  let open Alcotest in
  [
    test_case "overlapping views entangle through the shared field" `Quick
      (fun () ->
        let p = Fixtures.{ name = "ada"; age = 36; email = "a@x" } in
        let open Overlap.Infix in
        let (name, email), _ =
          Overlap.run (Overlap.set_a ("grace", 40) >> Overlap.get_b) p
        in
        check string "B sees the A write" "grace" name;
        check string "B-private field kept" "a@x" email);
    test_case "re_root lifts a span through an outer lens" `Quick (fun () ->
        let rooted = Span.re_root Esm_lens.Lens.fst_lens overlap_span in
        let bx = Span.to_set_bx rooted in
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let name, _email = bx.Concrete.get_b (p, 9) in
        check string "reads through fst" "ada" name);
    test_case "tensor pairs two spans" `Quick (fun () ->
        let t = Span.tensor overlap_span overlap_span in
        let bx = Span.to_set_bx t in
        let p = Fixtures.{ name = "x"; age = 1; email = "e" } in
        let (a1, _), (a2, _) = bx.Concrete.get_a (p, p) in
        check string "componentwise" a1 a2);
  ]

let suite =
  unit_tests
  @ Helpers.q (law_tests @ disjoint_tests @ [ of_lens_agreement ])
  @ entanglement_tests
