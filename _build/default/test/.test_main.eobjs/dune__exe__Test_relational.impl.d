test/test_relational.ml: Alcotest Algebra Esm_relational Helpers List Option Pred QCheck Row Schema String Table Value Workload
