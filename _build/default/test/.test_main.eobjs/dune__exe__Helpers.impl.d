test/helpers.ml: Alcotest Esm_lens Esm_relational List QCheck QCheck_alcotest
