test/test_command.ml: Alcotest Command Concrete Esm_core Esm_laws Fixtures Helpers Int Journal List Printf QCheck
