test/test_lens.ml: Alcotest Esm_laws Esm_lens Fixtures Fun Helpers Int Lens Lens_laws List QCheck String
