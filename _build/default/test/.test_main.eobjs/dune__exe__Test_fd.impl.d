test/test_fd.ml: Alcotest Algebra Esm_lens Esm_relational Fd Helpers List Pred QCheck Rlens Schema Table Value Workload
