test/test_nondet.ml: Alcotest Bx_laws Esm_core Helpers Int List Nondet QCheck
