test/fixtures.ml: Algbx Esm_algbx Esm_lens Esm_symlens Int Lens QCheck String
