test/test_translate.ml: Alcotest Bx_laws Concrete Effectful Equivalence Esm_core Esm_laws Esm_symlens Fixtures Helpers Int List Of_algebraic Of_lens Of_symmetric Printf QCheck String Translate
