test/test_integration.ml: Alcotest Algebra Certify Concrete Dml Effectful Esm_core Esm_lens Esm_relational Helpers Journal List Pred Printf Program Query Row Table Value Workload
