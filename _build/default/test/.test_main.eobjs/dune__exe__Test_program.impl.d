test/test_program.ml: Alcotest Concrete Equivalence Esm_core Esm_laws Fixtures Helpers List Program QCheck
