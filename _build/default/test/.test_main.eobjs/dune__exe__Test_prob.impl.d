test/test_prob.ml: Alcotest Bx_laws Esm_core Esm_monad Fixtures Float Helpers Int List Prob QCheck
