test/test_entanglement.ml: Alcotest Bx_laws Esm_core Fixtures Helpers Int Of_algebraic Of_lens Pair_bx String
