test/test_symlens.ml: Alcotest Either Esm_laws Esm_symlens Fixtures Helpers Int List QCheck String Symlens Symlens_laws
