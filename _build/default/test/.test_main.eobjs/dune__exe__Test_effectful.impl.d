test/test_effectful.ml: Alcotest Bx_laws Concrete Effectful Esm_core Fixtures Helpers Int List String
