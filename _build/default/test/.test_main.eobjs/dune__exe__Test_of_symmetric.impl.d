test/test_of_symmetric.ml: Alcotest Bx_laws Either Esm_core Esm_laws Esm_symlens Fixtures Helpers Int List Of_symmetric Printf QCheck String
