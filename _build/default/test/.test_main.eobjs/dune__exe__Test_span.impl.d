test/test_span.ml: Alcotest Bx_laws Concrete Equivalence Esm_core Esm_laws Esm_lens Fixtures Helpers Int QCheck Span String
