test/test_of_lens.ml: Alcotest Bx_laws Esm_core Esm_laws Esm_lens Esm_relational Fixtures Helpers Int List Of_lens QCheck String
