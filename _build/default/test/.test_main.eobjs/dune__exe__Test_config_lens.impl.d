test/test_config_lens.ml: Alcotest Config_lens Esm_core Esm_lens Helpers Lens Lens_laws List QCheck String
