test/test_algbx.ml: Alcotest Algbx Algbx_laws Esm_algbx Esm_laws Fixtures Helpers Int List QCheck
