test/test_query.ml: Alcotest Algebra Esm_lens Esm_relational Helpers List Pred QCheck Query Row Schema String Table Value Workload
