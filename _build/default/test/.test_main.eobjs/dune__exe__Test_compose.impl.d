test/test_compose.ml: Alcotest Compose Concrete Concrete_laws Either Equivalence Esm_core Esm_laws Esm_lens Fixtures Helpers Int Program QCheck String
