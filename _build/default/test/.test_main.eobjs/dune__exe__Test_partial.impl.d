test/test_partial.ml: Alcotest Bx_laws Concrete Esm_core Esm_laws Fixtures Helpers Int Partial QCheck
