test/test_multiway.ml: Alcotest Concrete Concrete_laws Esm_core Esm_laws Esm_lens Fixtures Helpers Multiway QCheck String
