test/test_of_algebraic.ml: Alcotest Bx_laws Esm_algbx Esm_core Fixtures Helpers Int List Of_algebraic QCheck
