test/test_equivalence.ml: Alcotest Concrete Equivalence Esm_core Esm_laws Fixtures Helpers Int Of_lens Program String
