test/test_modelbx.ml: Alcotest Diff Esm_algbx Esm_core Esm_modelbx Fun Helpers List Mbx Metamodel Model Option QCheck String
