test/test_certify.ml: Alcotest Certify Concrete Esm_core Esm_laws Fixtures Format Int List Option String
