test/test_delta_lens.ml: Alcotest Delta_lens Esm_laws Esm_lens Fixtures Helpers Int Lens QCheck String
