test/test_two_cell.ml: Alcotest Esm_core Esm_monad Fixtures Helpers Int List QCheck String Term
