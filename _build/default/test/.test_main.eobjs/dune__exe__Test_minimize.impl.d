test/test_minimize.ml: Alcotest Concrete Equivalence Esm_core Esm_laws Fixtures Helpers Int Minimize QCheck
