test/test_journal.ml: Alcotest Concrete Concrete_laws Esm_core Esm_laws Fixtures Helpers Int Journal List Printf QCheck
