test/test_tree.ml: Alcotest Esm_lens Helpers Lens Lens_laws List Option QCheck Tree
