test/test_dml.ml: Alcotest Algebra Dml Esm_relational Helpers List Pred QCheck Rlens Row Table Value Workload
