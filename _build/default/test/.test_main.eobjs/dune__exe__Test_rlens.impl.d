test/test_rlens.ml: Alcotest Algebra Esm_laws Esm_lens Esm_relational Helpers Lens List Pred QCheck Rlens Row Schema Table Value Workload
