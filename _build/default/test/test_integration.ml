(** Full-stack integration: one scenario threading every layer —

    surface view definition (Query) → compiled relational lens (Rlens)
    → concrete set-bx (Concrete.of_lens, Lemma 4) → journal + effectful
    wrappers (witness structure, §4/§5) → first-order programs (Program)
    → certification (Certify) → DML through the same view (Dml).

    If any boundary between the libraries is wrong, this suite is where
    it shows up. *)

open Esm_relational
open Esm_core

let check = Alcotest.check
let test = Alcotest.test_case

let schema = Workload.employees_schema
let store0 = Workload.employees ~seed:2026 ~size:16

(* 1. The view, defined in the surface syntax and compiled to a lens. *)
let view_def = "employees | where dept = \"Engineering\" | select id, name, dept"
let view_lens = Query.lens_of_string ~schema ~key:[ "id" ] view_def

(* 2. Lemma 4 at the record level, then journalled (witness structure). *)
let base_bx = Concrete.of_lens view_lens

let journalled_bx =
  Journal.journalled ~eq_a:Table.equal ~eq_b:Table.equal base_bx

(* 3. And an effectful layer over THAT (Section 4's generalisation). *)
module Audited = Effectful.Make (struct
  type ta = Table.t
  type tb = Table.t
  type ts = (Table.t, Table.t, Table.t) Journal.state

  let bx = journalled_bx
  let equal_a = Table.equal
  let equal_b = Table.equal

  let equal_s =
    Journal.equal_state ~eq_a:Table.equal ~eq_b:Table.equal ~eq_s:Table.equal

  let message_a = "AUDIT store"
  let message_b = "AUDIT view"
end)

let eng = Pred.(col "dept" = str "Engineering")

let scenario_tests =
  [
    test "view edit flows through every layer" `Quick (fun () ->
        let st0 = Journal.initial store0 in
        (* edit the view through the full stack: give everyone in
           engineering a normalised dept name (no-op) and rename one
           person (real edit) *)
        let view = Esm_lens.Lens.get view_lens store0 in
        match Table.rows view with
        | first :: _ ->
            let vschema = Table.schema view in
            let edited =
              Table.insert
                (Table.delete view first)
                (Row.set vschema first "name" (Value.Str "integration!"))
            in
            let ((), st1), trace = Audited.run (Audited.set_b edited) st0 in
            (* the trace fired exactly once *)
            check Alcotest.(list string) "audited" [ "AUDIT view" ] trace;
            (* the journal recorded exactly one effective edit *)
            check Alcotest.int "journalled" 1
              (List.length (Journal.history st1));
            (* the store absorbed the rename, preserving hidden columns *)
            let id = Row.get vschema first "id" in
            let updated =
              List.find
                (fun r -> Value.equal (Row.get schema r "id") id)
                (Table.rows st1.Journal.current)
            in
            check Alcotest.bool "name written through" true
              (Row.get schema updated "name" = Value.Str "integration!");
            check Alcotest.bool "email preserved" true
              (Value.equal
                 (Row.get schema updated "email")
                 (Row.get schema
                    (List.find
                       (fun r -> Value.equal (Row.get schema r "id") id)
                       (Table.rows store0))
                    "email"))
        | [] -> Alcotest.fail "expected a non-empty engineering view");
    test "no-op edits are silent at every layer" `Quick (fun () ->
        let st0 = Journal.initial store0 in
        let view = Esm_lens.Lens.get view_lens store0 in
        let ((), st1), trace = Audited.run (Audited.set_b view) st0 in
        check Alcotest.(list string) "no audit" [] trace;
        check Alcotest.int "no journal entry" 0
          (List.length (Journal.history st1));
        check Alcotest.bool "store untouched" true
          (Table.equal st1.Journal.current store0));
    test "DML through the compiled view = direct DML on the store" `Quick
      (fun () ->
        let stmt =
          Dml.Update
            (Pred.(col "id" <= int 5), [ ("name", Pred.str "bulk") ])
        in
        let via_view = Dml.through view_lens stmt store0 in
        let direct =
          Dml.apply store0
            (Dml.Update
               (Pred.(col "id" <= int 5 && eng), [ ("name", Pred.str "bulk") ]))
        in
        check Helpers.table "agree" direct via_view);
    test "programs over the stacked bx satisfy law-derived rewrites" `Quick
      (fun () ->
        (* inserting a get/set round trip into a program over the view bx
           changes nothing, even under the journal (GS holds there) *)
        let ops =
          [
            Program.Get_b;
            Program.Set_b (Esm_lens.Lens.get view_lens store0);
            Program.Get_a;
          ]
        in
        let st0 = Journal.initial store0 in
        let obs1, st1 = Program.interp journalled_bx ops st0 in
        let ops' = Program.insert_get_set_roundtrip journalled_bx st0 ops 1 in
        let obs2, st2 = Program.interp journalled_bx ops' st0 in
        check Alcotest.int "one extra observation" (List.length obs1 + 1)
          (List.length obs2);
        check Alcotest.bool "same final store" true
          (Table.equal st1.Journal.current st2.Journal.current));
    test "the stacked bx certifies well-behaved" `Quick (fun () ->
        let view_a = Algebra.select Pred.(col "id" <= int 7) store0 in
        let view_b = Esm_lens.Lens.get view_lens store0 in
        let report =
          Certify.certify
            ~values_a:[ store0; view_a ]
            ~values_b:
              [ view_b; Algebra.select Pred.(col "id" <= int 3) view_b ]
            ~eq_a:Table.equal ~eq_b:Table.equal
            ~show_a:(fun t -> Printf.sprintf "<table:%d>" (Table.cardinality t))
            ~show_b:(fun t -> Printf.sprintf "<view:%d>" (Table.cardinality t))
            (Concrete.pack ~bx:journalled_bx
               ~init:(Journal.initial store0)
               ~eq_state:
                 (Journal.equal_state ~eq_a:Table.equal ~eq_b:Table.equal
                    ~eq_s:Table.equal))
        in
        check Alcotest.bool "well-behaved" true (Certify.well_behaved report));
  ]

let suite = scenario_tests
