(** Tests for asymmetric lenses: unit behaviour of every combinator, the
    lens laws (GetPut/PutGet/PutPut) for each, law preservation by
    composition, and negative tests showing the harness rejects broken
    lenses. *)

open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Unit behaviour                                                      *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    test "id: get and put are trivial" `Quick (fun () ->
        check Alcotest.int "get" 5 (Lens.get Lens.id 5);
        check Alcotest.int "put" 9 (Lens.put Lens.id 5 9));
    test "fst/snd focus pair components" `Quick (fun () ->
        check Alcotest.int "fst get" 1 (Lens.get Lens.fst_lens (1, "x"));
        check
          Alcotest.(pair int string)
          "fst put" (2, "x")
          (Lens.put Lens.fst_lens (1, "x") 2);
        check Alcotest.string "snd get" "x" (Lens.get Lens.snd_lens (1, "x")));
    test "compose goes through the middle" `Quick (fun () ->
        let l = Lens.(fst_lens // snd_lens) in
        check Alcotest.string "get" "mid" (Lens.get l (((1, "mid"), 2.0)));
        check
          Alcotest.(pair (pair int string) (float 0.0))
          "put"
          ((1, "new"), 2.0)
          (Lens.put l ((1, "mid"), 2.0) "new"));
    test "pair applies lenses in parallel" `Quick (fun () ->
        let l = Lens.pair Lens.fst_lens Lens.id in
        check
          Alcotest.(pair int string)
          "get" (1, "b")
          (Lens.get l ((1, 2), "b")));
    test "update is get-modify-put" `Quick (fun () ->
        check
          Alcotest.(pair int string)
          "bump" (6, "k")
          (Lens.update Lens.fst_lens succ (5, "k")));
    test "swap is an involution" `Quick (fun () ->
        check
          Alcotest.(pair int string)
          "round trip" (1, "x")
          (Lens.get Lens.swap (Lens.get Lens.swap ((1, "x") : int * string))));
    test "const: putting the same view is identity" `Quick (fun () ->
        let l = Lens.const ~pp:string_of_int 3 in
        check Alcotest.int "get" 3 (Lens.get l 99);
        check Alcotest.int "put same" 99 (Lens.put l 99 3));
    test "const: putting a different view raises" `Quick (fun () ->
        let l = Lens.const ~pp:string_of_int 3 in
        Alcotest.check_raises "shape error"
          (Lens.Shape_error "const lens: cannot put view 4") (fun () ->
            ignore (Lens.put l 0 4)));
    test "assoc focuses a key" `Quick (fun () ->
        let l = Lens.assoc ~pp_key:Fun.id "b" in
        check Alcotest.int "get" 2 (Lens.get l [ ("a", 1); ("b", 2) ]);
        check
          Alcotest.(list (pair string int))
          "put replaces in place"
          [ ("a", 1); ("b", 7) ]
          (Lens.put l [ ("a", 1); ("b", 2) ] 7));
    test "assoc appends a missing key on put" `Quick (fun () ->
        let l = Lens.assoc ~pp_key:Fun.id "z" in
        check
          Alcotest.(list (pair string int))
          "appended"
          [ ("a", 1); ("z", 9) ]
          (Lens.put l [ ("a", 1) ] 9));
    test "head focuses the first element" `Quick (fun () ->
        check Alcotest.int "get" 1 (Lens.get Lens.head [ 1; 2; 3 ]);
        check
          Alcotest.(list int)
          "put" [ 9; 2; 3 ]
          (Lens.put Lens.head [ 1; 2; 3 ] 9));
    test "list_map: shorter view drops sources, longer creates" `Quick
      (fun () ->
        let l = Lens.list_map ~create:(fun v -> (v, "fresh")) Lens.fst_lens in
        check
          Alcotest.(list (pair int string))
          "shorter"
          [ (9, "a") ]
          (Lens.put l [ (1, "a"); (2, "b") ] [ 9 ]);
        check
          Alcotest.(list (pair int string))
          "longer"
          [ (9, "a"); (8, "fresh") ]
          (Lens.put l [ (1, "a") ] [ 9; 8 ]));
    test "filter: put splices kept elements back in position" `Quick
      (fun () ->
        let l = Lens.filter ~keep:(fun x -> x mod 2 = 0) in
        check Alcotest.(list int) "get" [ 2; 4 ] (Lens.get l [ 1; 2; 3; 4 ]);
        check
          Alcotest.(list int)
          "put" [ 1; 20; 3; 40 ]
          (Lens.put l [ 1; 2; 3; 4 ] [ 20; 40 ]));
    test "filter: surplus view elements are appended" `Quick (fun () ->
        let l = Lens.filter ~keep:(fun x -> x mod 2 = 0) in
        check
          Alcotest.(list int)
          "put longer" [ 1; 20; 40; 60 ]
          (Lens.put l [ 1; 2; 4 ] [ 20; 40; 60 ]));
    test "filter: rejects a view element failing the predicate" `Quick
      (fun () ->
        let l = Lens.filter ~keep:(fun x -> x mod 2 = 0) in
        Alcotest.check_raises "shape error"
          (Lens.Shape_error "filter lens: view element fails the predicate")
          (fun () -> ignore (Lens.put l [ 2 ] [ 3 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Law suites                                                          *)
(* ------------------------------------------------------------------ *)

let eq_int_list : int list -> int list -> bool = Esm_laws.Equality.(list int)

let law_tests =
  List.concat
    [
      Lens_laws.very_well_behaved ~name:"id" Lens.id ~gen_s:Helpers.small_int
        ~gen_v:Helpers.small_int ~eq_s:Int.equal ~eq_v:Int.equal;
      Lens_laws.very_well_behaved ~name:"fst" Lens.fst_lens
        ~gen_s:Helpers.pair_int_string ~gen_v:Helpers.small_int
        ~eq_s:Esm_laws.Equality.(pair int string)
        ~eq_v:Int.equal;
      Lens_laws.very_well_behaved ~name:"person.name" Fixtures.name_lens
        ~gen_s:Fixtures.gen_person ~gen_v:Helpers.short_string
        ~eq_s:Fixtures.equal_person ~eq_v:String.equal;
      Lens_laws.very_well_behaved ~name:"compose fst;snd"
        Lens.(fst_lens // snd_lens)
        ~gen_s:(QCheck.pair Helpers.pair_int_string QCheck.bool)
        ~gen_v:Helpers.short_string
        ~eq_s:
          Esm_laws.Equality.(pair (pair int string) bool)
        ~eq_v:String.equal;
      Lens_laws.very_well_behaved ~name:"pair(fst,id)"
        (Lens.pair Lens.fst_lens Lens.id)
        ~gen_s:(QCheck.pair Helpers.pair_int_string Helpers.small_int)
        ~gen_v:(QCheck.pair Helpers.small_int Helpers.small_int)
        ~eq_s:Esm_laws.Equality.(pair (pair int string) int)
        ~eq_v:Esm_laws.Equality.(pair int int);
      Lens_laws.very_well_behaved ~name:"iso negate"
        (Lens.of_iso ~name:"neg" (fun x -> -x) (fun x -> -x))
        ~gen_s:Helpers.small_int ~gen_v:Helpers.small_int ~eq_s:Int.equal
        ~eq_v:Int.equal;
      (* const: view generator restricted to the single legal view. *)
      Lens_laws.very_well_behaved ~name:"const 3"
        (Lens.const ~pp:string_of_int 3)
        ~gen_s:Helpers.small_int
        ~gen_v:(QCheck.always 3)
        ~eq_s:Int.equal ~eq_v:Int.equal;
      (* assoc: sources with the key present exactly once. *)
      (let gen_s =
         QCheck.map
           (fun (v, rest) -> ("k", v) :: List.map (fun x -> ("o", x)) rest)
           (QCheck.pair Helpers.small_int (QCheck.small_list Helpers.small_int))
       in
       Lens_laws.very_well_behaved ~name:"assoc k"
         (Lens.assoc ~pp_key:Fun.id "k")
         ~gen_s ~gen_v:Helpers.small_int
         ~eq_s:Esm_laws.Equality.(list (pair string int))
         ~eq_v:Int.equal);
      (* head: non-empty sources. *)
      (let gen_s =
         QCheck.map
           (fun (x, xs) -> x :: xs)
           (QCheck.pair Helpers.small_int (QCheck.small_list Helpers.small_int))
       in
       Lens_laws.very_well_behaved ~name:"head" Lens.head ~gen_s
         ~gen_v:Helpers.small_int ~eq_s:eq_int_list ~eq_v:Int.equal);
      (* list_map over fst: well-behaved on arbitrary views; (PutPut)
         additionally needs equal-length views (a shrinking view discards
         source elements that a later longer view cannot recover). *)
      Lens_laws.well_behaved ~name:"list_map fst"
        (Lens.list_map ~create:(fun v -> (v, "fresh")) Lens.fst_lens)
        ~gen_s:(QCheck.small_list Helpers.pair_int_string)
        ~gen_v:(QCheck.small_list Helpers.small_int)
        ~eq_s:Esm_laws.Equality.(list (pair int string))
        ~eq_v:eq_int_list;
      [
        QCheck.Test.make ~count:300
          ~name:"list_map fst (PutPut, equal-length views)"
          (QCheck.pair
             (QCheck.small_list Helpers.pair_int_string)
             (QCheck.small_list (QCheck.pair Helpers.small_int Helpers.small_int)))
          (fun (s, vv') ->
            let v = List.map fst vv' and v' = List.map snd vv' in
            let l =
              Lens.list_map ~create:(fun x -> (x, "fresh")) Lens.fst_lens
            in
            Esm_laws.Equality.(list (pair int string))
              (Lens.put l (Lens.put l s v) v')
              (Lens.put l s v'));
      ];
      (* filter: views of even numbers only. *)
      (let gen_v =
         QCheck.map (List.map (fun x -> 2 * x))
           (QCheck.small_list Helpers.small_int)
       in
       Lens_laws.well_behaved ~name:"filter even"
         (Lens.filter ~keep:(fun x -> x mod 2 = 0))
         ~gen_s:(QCheck.small_list Helpers.small_int)
         ~gen_v ~eq_s:eq_int_list ~eq_v:eq_int_list);
      (* counted: well-behaved but NOT very-well-behaved. *)
      Lens_laws.well_behaved ~name:"counted" Fixtures.counted_lens
        ~gen_s:Fixtures.gen_counted ~gen_v:Helpers.small_int
        ~eq_s:Fixtures.equal_counted ~eq_v:Int.equal;
    ]

(* ------------------------------------------------------------------ *)
(* Negative tests: the harness detects broken and non-VWB lenses       *)
(* ------------------------------------------------------------------ *)

let negative_tests =
  [
    Helpers.expect_law_failure "broken lens fails PutGet"
      (Lens_laws.put_get ~name:"broken" Fixtures.broken_lens
         ~gen_s:Fixtures.gen_person ~gen_v:Helpers.small_int ~eq_v:Int.equal);
    Helpers.expect_law_failure "counted lens fails PutPut"
      (Lens_laws.put_put ~name:"counted" Fixtures.counted_lens
         ~gen_s:Fixtures.gen_counted ~gen_v:Helpers.small_int
         ~eq_s:Fixtures.equal_counted);
  ]

let suite = unit_tests @ Helpers.q law_tests @ negative_tests
