(** The first-order program language: interpreter behaviour and the
    law-derived program transformations (observational consequences of
    the set-bx laws over whole programs, not just single equations). *)

open Esm_core

let name_bx = Concrete.of_lens Fixtures.name_lens
let parity_bx = Concrete.of_algebraic Fixtures.parity_undoable
let pair_bx : (int, string, int * string) Concrete.set_bx = Concrete.pair ()

let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" }

let gen_ops_parity :
    (int, int) Program.op list QCheck.arbitrary =
  Equivalence.gen_ops Helpers.small_int Helpers.small_int

let unit_tests =
  let open Alcotest in
  [
    test_case "interp returns one observation per op" `Quick (fun () ->
        let obs, s' =
          Program.interp name_bx
            [ Program.Get_b; Program.Set_b "grace"; Program.Get_a ]
            p0
        in
        check int "three observations" 3 (List.length obs);
        check string "final state" "grace" s'.Fixtures.name;
        match obs with
        | [ Program.Saw_b "ada"; Program.Did_set; Program.Saw_a p ] ->
            check string "post-set view" "grace" p.Fixtures.name
        | _ -> Alcotest.fail "unexpected observations");
    test_case "simplify_sets drops gets and stacked sets" `Quick (fun () ->
        let prog =
          [
            Program.Get_a;
            Program.Set_a 1;
            Program.Get_b;
            Program.Set_a 2;
            Program.Set_b 3;
            Program.Set_b 4;
          ]
        in
        match Program.simplify_sets prog with
        | [ Program.Set_a 2; Program.Set_b 4 ] -> ()
        | other ->
            Alcotest.failf "unexpected: %d ops left" (List.length other));
    test_case "observe runs from the packed initial state" `Quick (fun () ->
        let packed =
          Concrete.pack ~bx:pair_bx ~init:(7, "x")
            ~eq_state:Esm_laws.Equality.(pair int string)
        in
        match Program.observe packed [ Program.Get_a; Program.Get_b ] with
        | [ Program.Saw_a 7; Program.Saw_b "x" ] -> ()
        | _ -> Alcotest.fail "unexpected");
  ]

let prop_tests =
  [
    (* On an overwriteable bx, simplify_sets preserves the final state. *)
    QCheck.Test.make ~count:500
      ~name:"simplify_sets preserves final state (overwriteable bx)"
      (QCheck.pair Fixtures.gen_parity_consistent gen_ops_parity)
      (fun (s0, ops) ->
        let _, s1 = Program.interp parity_bx ops s0 in
        let _, s2 = Program.interp parity_bx (Program.simplify_sets ops) s0 in
        s1 = s2);
    (* (GS) as a whole-program transformation: inserting get>>=set
       anywhere changes nothing. *)
    QCheck.Test.make ~count:500
      ~name:"inserting a get/set round trip never changes observations"
      (QCheck.triple Fixtures.gen_parity_consistent gen_ops_parity
         QCheck.small_nat)
      (fun (s0, ops, i) ->
        let ops' = Program.insert_get_set_roundtrip parity_bx s0 ops i in
        let obs, s1 = Program.interp parity_bx ops s0 in
        let obs', s1' = Program.interp parity_bx ops' s0 in
        (* The inserted op contributes one extra Did_set observation;
           removing it must recover the original observation list. *)
        let strip_nth n xs = List.filteri (fun j _ -> j <> n) xs in
        let i = if ops = [] then 0 else i mod (List.length ops + 1) in
        s1 = s1'
        && List.length obs' = List.length obs + 1
        && strip_nth i obs' = obs);
    (* (SG) as a program law: a Get right after a Set sees the set value. *)
    QCheck.Test.make ~count:500 ~name:"get after set observes the set value"
      (QCheck.pair Fixtures.gen_parity_consistent Helpers.small_int)
      (fun (s0, a) ->
        match
          Program.interp parity_bx [ Program.Set_a a; Program.Get_a ] s0
        with
        | [ Program.Did_set; Program.Saw_a a' ], _ -> a = a'
        | _ -> false);
    (* Program-level idempotence of set on the pair bx. *)
    QCheck.Test.make ~count:500
      ~name:"pair bx: duplicate sets collapse (SS at program level)"
      (QCheck.triple
         (QCheck.pair Helpers.small_int Helpers.short_string)
         Helpers.small_int Helpers.small_int)
      (fun (s0, a, a') ->
        let _, s1 =
          Program.interp pair_bx [ Program.Set_a a; Program.Set_a a' ] s0
        in
        let _, s2 = Program.interp pair_bx [ Program.Set_a a' ] s0 in
        s1 = s2);
  ]

let suite = unit_tests @ Helpers.q prop_tests
