(** Functional dependencies: the typing discipline of relational lenses
    made checkable. *)

open Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let schema =
  Schema.make [ ("id", Value.Tint); ("dept", Value.Tstr); ("boss", Value.Tstr) ]

let t_ok =
  Table.of_lists schema
    [
      [ Value.Int 1; Value.Str "eng"; Value.Str "grace" ];
      [ Value.Int 2; Value.Str "eng"; Value.Str "grace" ];
      [ Value.Int 3; Value.Str "ops"; Value.Str "barbara" ];
    ]

let t_bad =
  Table.of_lists schema
    [
      [ Value.Int 1; Value.Str "eng"; Value.Str "grace" ];
      [ Value.Int 2; Value.Str "eng"; Value.Str "ada" ];
    ]

let dept_boss = Fd.v [ "dept" ] [ "boss" ]

let unit_tests =
  [
    test "holds on a conforming table" `Quick (fun () ->
        check Alcotest.bool "dept -> boss" true (Fd.holds dept_boss t_ok));
    test "fails on a violating table" `Quick (fun () ->
        check Alcotest.bool "violated" false (Fd.holds dept_boss t_bad);
        check Alcotest.int "one violating pair" 1
          (List.length (Fd.violations dept_boss t_bad)));
    test "is_key recognises the id column" `Quick (fun () ->
        check Alcotest.bool "id keys" true (Fd.is_key [ "id" ] t_ok);
        check Alcotest.bool "dept does not" false (Fd.is_key [ "dept" ] t_ok));
    test "enforce keeps one row per determinant" `Quick (fun () ->
        let t' = Fd.enforce dept_boss t_bad in
        check Alcotest.bool "now holds" true (Fd.holds dept_boss t');
        check Alcotest.int "one eng row" 1
          (Table.cardinality (Algebra.select Pred.(col "dept" = str "eng") t')));
    test "not_refuted_by finds a falsifier" `Quick (fun () ->
        (* id -> dept holds in both samples, but dept -> boss is refuted
           by t_bad (which satisfies id -> dept). *)
        check Alcotest.bool "refuted" false
          (Fd.not_refuted_by
             ~samples:[ t_ok; t_bad ]
             [ Fd.v [ "id" ] [ "dept" ] ]
             dept_boss));
  ]

let gen_table =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 30 in
      return (Workload.employees ~seed ~size))

let prop_tests =
  [
    QCheck.Test.make ~count:200
      ~name:"the workload satisfies id -> everything (by construction)"
      gen_table
      (fun t -> Fd.is_key [ "id" ] t);
    QCheck.Test.make ~count:200 ~name:"enforce establishes any FD" gen_table
      (fun t ->
        let fd = Fd.v [ "dept" ] [ "salary" ] in
        Fd.holds fd (Fd.enforce fd t));
    QCheck.Test.make ~count:200 ~name:"enforce is idempotent" gen_table
      (fun t ->
        let fd = Fd.v [ "dept" ] [ "name" ] in
        let once = Fd.enforce fd t in
        Table.equal once (Fd.enforce fd once));
    QCheck.Test.make ~count:200
      ~name:"FD-conforming tables make project very well-behaved" gen_table
      (fun t ->
        (* project keeps name; key name; the FD name -> * must hold for
           the lens laws, so enforce it first and check GetPut. *)
        let fd = Fd.v [ "name" ] [ "id"; "dept"; "salary"; "email" ] in
        let t = Fd.enforce fd t in
        let l =
          Rlens.project ~keep:[ "name"; "salary" ] ~key:[ "name" ]
            Workload.employees_schema
        in
        Table.equal (Esm_lens.Lens.put l t (Esm_lens.Lens.get l t)) t);
  ]

let suite = unit_tests @ Helpers.q prop_tests
