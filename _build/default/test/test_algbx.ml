(** Tests for algebraic bx: unit behaviour, the (Correct)/(Hippocratic)/
    (Undoable) laws for each construction, the undoable/non-undoable
    parity pair from the fixtures, and negative detection. *)

open Esm_algbx

let check = Alcotest.check
let test = Alcotest.test_case

let unit_tests =
  [
    test "identity restores by copying" `Quick (fun () ->
        let bx = Algbx.identity ~eq:Int.equal in
        check Alcotest.int "fwd" 5 (Algbx.fwd bx 5 9);
        check Alcotest.int "bwd" 9 (Algbx.bwd bx 5 9));
    test "parity_undoable flips the parity bit" `Quick (fun () ->
        check Alcotest.int "fwd fixes" 5 (Algbx.fwd Fixtures.parity_undoable 7 4);
        check Alcotest.int "fwd keeps consistent" 4
          (Algbx.fwd Fixtures.parity_undoable 6 4));
    test "parity_sticky increments to fix" `Quick (fun () ->
        check Alcotest.int "fwd" 5 (Algbx.fwd Fixtures.parity_sticky 7 4));
    test "converse swaps restorers" `Quick (fun () ->
        let bx = Algbx.converse Fixtures.parity_undoable in
        check Alcotest.bool "consistency swapped" true
          (Algbx.consistent bx 3 7));
    test "product works componentwise" `Quick (fun () ->
        let bx = Algbx.product (Algbx.identity ~eq:Int.equal) Fixtures.parity_undoable in
        let b1, b2 = Algbx.fwd bx (1, 2) (9, 9) in
        check Alcotest.int "copied" 1 b1;
        check Alcotest.int "parity fixed" 8 b2);
    test "repair_fwd yields a consistent pair" `Quick (fun () ->
        let a, b = Algbx.repair_fwd Fixtures.parity_sticky (3, 8) in
        check Alcotest.bool "consistent" true
          (Algbx.consistent Fixtures.parity_sticky a b));
    test "of_lens consistency is get-agreement" `Quick (fun () ->
        let bx = Algbx.of_lens ~eq_v:Int.equal Fixtures.age_lens in
        let p = Fixtures.{ name = "n"; age = 3; email = "e" } in
        check Alcotest.bool "consistent" true (Algbx.consistent bx p 3);
        check Alcotest.bool "inconsistent" false (Algbx.consistent bx p 4);
        check Alcotest.int "bwd puts" 9 (Algbx.bwd bx p 9).Fixtures.age);
    test "trivial never repairs" `Quick (fun () ->
        let bx = Algbx.trivial () in
        check Alcotest.int "fwd" 9 (Algbx.fwd bx 1 9);
        check Alcotest.int "bwd" 1 (Algbx.bwd bx 1 9));
  ]

(* ------------------------------------------------------------------ *)
(* Laws                                                                *)
(* ------------------------------------------------------------------ *)

let gen_identity_consistent : (int * int) QCheck.arbitrary =
  QCheck.map (fun a -> (a, a)) Helpers.small_int

let law_tests =
  List.concat
    [
      Algbx_laws.well_behaved ~name:"identity" (Algbx.identity ~eq:Int.equal)
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
        ~gen_consistent:gen_identity_consistent ~eq_a:Int.equal
        ~eq_b:Int.equal;
      Algbx_laws.undoable ~name:"identity" (Algbx.identity ~eq:Int.equal)
        ~gen_consistent:gen_identity_consistent ~gen_a:Helpers.small_int
        ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal;
      Algbx_laws.well_behaved ~name:"parity_undoable" Fixtures.parity_undoable
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
        ~gen_consistent:Fixtures.gen_parity_consistent ~eq_a:Int.equal
        ~eq_b:Int.equal;
      Algbx_laws.undoable ~name:"parity_undoable" Fixtures.parity_undoable
        ~gen_consistent:Fixtures.gen_parity_consistent
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
        ~eq_b:Int.equal;
      Algbx_laws.well_behaved ~name:"parity_sticky" Fixtures.parity_sticky
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
        ~gen_consistent:Fixtures.gen_parity_consistent ~eq_a:Int.equal
        ~eq_b:Int.equal;
      Algbx_laws.well_behaved ~name:"converse parity"
        (Algbx.converse Fixtures.parity_undoable) ~gen_a:Helpers.small_int
        ~gen_b:Helpers.small_int
        ~gen_consistent:
          (QCheck.map (fun (a, b) -> (b, a)) Fixtures.gen_parity_consistent)
        ~eq_a:Int.equal ~eq_b:Int.equal;
      Algbx_laws.well_behaved ~name:"product id*parity"
        (Algbx.product (Algbx.identity ~eq:Int.equal) Fixtures.parity_undoable)
        ~gen_a:(QCheck.pair Helpers.small_int Helpers.small_int)
        ~gen_b:(QCheck.pair Helpers.small_int Helpers.small_int)
        ~gen_consistent:
          (QCheck.map
             (fun ((a, _), (p, p')) -> ((a, p), (a, p')))
             (QCheck.pair gen_identity_consistent
                Fixtures.gen_parity_consistent))
        ~eq_a:Esm_laws.Equality.(pair int int)
        ~eq_b:Esm_laws.Equality.(pair int int);
      Algbx_laws.well_behaved ~name:"of_lens age"
        (Algbx.of_lens ~eq_v:Int.equal Fixtures.age_lens)
        ~gen_a:Fixtures.gen_person ~gen_b:Helpers.small_int
        ~gen_consistent:
          (QCheck.map (fun p -> (p, p.Fixtures.age)) Fixtures.gen_person)
        ~eq_a:Fixtures.equal_person ~eq_b:Int.equal;
      Algbx_laws.well_behaved ~name:"trivial" (Algbx.trivial ())
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
        ~gen_consistent:(QCheck.pair Helpers.small_int Helpers.small_int)
        ~eq_a:Int.equal ~eq_b:Int.equal;
      Algbx_laws.undoable ~name:"trivial" (Algbx.trivial ())
        ~gen_consistent:(QCheck.pair Helpers.small_int Helpers.small_int)
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
        ~eq_b:Int.equal;
      (* compose_via: parity_undoable ; parity_undoable with middle
         functionally determined by each side's parity. *)
      (let mid x = x land 1 in
       let composed =
         Algbx.compose_via ~mid_of_a:mid ~mid_of_b:mid
           (Algbx.v ~name:"a-par"
              ~consistent:(fun a m -> a land 1 = m)
              ~fwd:(fun a _ -> a land 1)
              ~bwd:(fun a m -> if a land 1 = m then a else a + 1)
              ())
           (Algbx.v ~name:"par-b"
              ~consistent:(fun m b -> b land 1 = m)
              ~fwd:(fun m b -> if b land 1 = m then b else b + 1)
              ~bwd:(fun m _ -> m)
              ())
       in
       Algbx_laws.well_behaved ~name:"compose_via parity" composed
         ~gen_a:QCheck.small_nat ~gen_b:QCheck.small_nat
         ~gen_consistent:
           (QCheck.map
              (fun (a, b) -> (a, (2 * b) + (a land 1)))
              (QCheck.pair QCheck.small_nat QCheck.small_nat))
         ~eq_a:Int.equal ~eq_b:Int.equal);
    ]

let negative_tests =
  [
    Helpers.expect_law_failure "broken algbx fails Correct"
      (List.hd
         (Algbx_laws.correct ~name:"broken" Fixtures.broken_algbx
            ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int));
    Helpers.expect_law_failure "parity_sticky fails Undoable"
      (List.hd
         (Algbx_laws.undoable ~name:"parity_sticky" Fixtures.parity_sticky
            ~gen_consistent:Fixtures.gen_parity_consistent
            ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
            ~eq_b:Int.equal));
  ]

let suite = unit_tests @ Helpers.q law_tests @ negative_tests
