(** Observational equivalence of entangled state monads: agreement of the
    functor-level and record-level constructions, equivalence of bx with
    different hidden state representations, and inequivalence of
    genuinely different bx. *)

open Esm_core

let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" }

(* The same Lemma-4 bx, built two ways: the record constructor, and the
   functor run through a record adapter. *)
module Name_functor = Of_lens.Make (struct
  type s = Fixtures.person
  type v = string

  let lens = Fixtures.name_lens
  let equal_s = Fixtures.equal_person
end)

let functor_as_record : (Fixtures.person, string, Fixtures.person) Concrete.set_bx =
  {
    Concrete.name = "functor-adapter";
    get_a = (fun s -> fst (Name_functor.run Name_functor.get_a s));
    get_b = (fun s -> fst (Name_functor.run Name_functor.get_b s));
    set_a = (fun a s -> snd (Name_functor.run (Name_functor.set_a a) s));
    set_b = (fun b s -> snd (Name_functor.run (Name_functor.set_b b) s));
  }

(* The same synchronisation, as a symmetric lens over a DIFFERENT hidden
   state (person * string * complement) — still observationally the same
   bx. *)
let name_via_symlens : (Fixtures.person, string) Concrete.packed =
  Concrete.packed_of_symlens ~seed_a:p0 ~eq_a:Fixtures.equal_person
    ~eq_b:String.equal Fixtures.name_symlens

let record_packed =
  Concrete.pack ~bx:(Concrete.of_lens Fixtures.name_lens) ~init:p0
    ~eq_state:Fixtures.equal_person

let functor_packed =
  Concrete.pack ~bx:functor_as_record ~init:p0
    ~eq_state:Fixtures.equal_person

(* A pair bx and an entangled bx over the same value types: NOT
   equivalent. *)
let pair_packed =
  Concrete.pack
    ~bx:(Concrete.pair () : (int, int, int * int) Concrete.set_bx)
    ~init:(0, 0)
    ~eq_state:Esm_laws.Equality.(pair int int)

let parity_packed =
  Concrete.pack ~bx:(Concrete.of_algebraic Fixtures.parity_undoable)
    ~init:(0, 0)
    ~eq_state:Esm_laws.Equality.(pair int int)

let equiv_tests =
  [
    Equivalence.test ~count:500
      ~name:"functor and record constructions agree (Lemma 4)"
      ~eq_a:Fixtures.equal_person ~eq_b:String.equal
      ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string record_packed
      functor_packed;
    Equivalence.test ~count:500
      ~name:"lens bx and symlens bx with different hidden state coincide"
      ~eq_a:Fixtures.equal_person ~eq_b:String.equal
      ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string record_packed
      name_via_symlens;
  ]

let negative_tests =
  [
    Helpers.expect_law_failure "pair bx and parity bx are distinguishable"
      (Equivalence.test ~count:500 ~name:"(expected to fail)" ~eq_a:Int.equal
         ~eq_b:Int.equal ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
         pair_packed parity_packed);
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "equivalent_on distinguishes with a witness program" `Quick
      (fun () ->
        (* set_a 1 entangles b in the parity bx but not in the pair bx. *)
        let witness = [ Program.Set_a 1; Program.Get_b ] in
        check bool "agree on empty" true
          (Equivalence.equivalent_on ~eq_a:Int.equal ~eq_b:Int.equal
             pair_packed parity_packed [ [] ]);
        check bool "distinguished" false
          (Equivalence.equivalent_on ~eq_a:Int.equal ~eq_b:Int.equal
             pair_packed parity_packed [ witness ]));
  ]

let suite = unit_tests @ Helpers.q equiv_tests @ negative_tests
