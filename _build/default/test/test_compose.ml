(** Composition of entangled state monads (the paper's open problem,
    Section 5), for the state-based instances via {!Esm_core.Compose}.

    Checks: the composite satisfies the set-bx laws on ALIGNED states
    (and overwriteability is preserved); identity is a unit up to
    observational equivalence; composition is associative observationally;
    and on unaligned states (GS) genuinely fails — the restriction of the
    state space is necessary, as the paper anticipates. *)

open Esm_core

let name_bx = Concrete.of_lens Fixtures.name_lens
let upper_bx =
  Concrete.of_lens
    (Esm_lens.Lens.of_iso ~name:"upper" String.uppercase_ascii
       String.lowercase_ascii)

(* person <-> name <-> NAME *)
let composed = Compose.compose name_bx upper_bx

let eq_pair = Esm_laws.Equality.pair Fixtures.equal_person String.equal

(* Aligned states: (p, name p) with a lowercase name so the iso is exact. *)
let gen_lower_person =
  QCheck.map
    (fun p -> Fixtures.{ p with name = String.lowercase_ascii p.name })
    Fixtures.gen_person

let gen_aligned : (Fixtures.person * string) QCheck.arbitrary =
  QCheck.map (fun p -> (p, p.Fixtures.name)) gen_lower_person

let gen_lower_string = QCheck.map String.lowercase_ascii Helpers.short_string
let gen_upper_string = QCheck.map String.uppercase_ascii Helpers.short_string

let cfg =
  Concrete_laws.config ~name:"compose(name;upper)" ~gen_state:gen_aligned
    ~gen_a:gen_lower_person ~gen_b:gen_upper_string
    ~eq_a:Fixtures.equal_person ~eq_b:String.equal ~eq_state:eq_pair ()

let law_tests =
  Concrete_laws.overwriteable cfg composed
  @ [
      QCheck.Test.make ~count:500 ~name:"compose: alignment is preserved"
        (QCheck.pair gen_aligned
           (QCheck.oneof
              [
                QCheck.map Either.left gen_lower_person;
                QCheck.map Either.right gen_upper_string;
              ]))
        (fun (s, upd) ->
          let s' =
            match upd with
            | Either.Left a -> composed.Concrete.set_a a s
            | Either.Right b -> composed.Concrete.set_b b s
          in
          Compose.aligned ~eq_mid:String.equal name_bx upper_bx s');
    ]

let negative_tests =
  [
    (* On UNALIGNED states (GS) fails: setting back the current A view
       still repairs the right component. *)
    Helpers.expect_law_failure "compose: (GS) fails off the aligned subset"
      (Concrete_laws.gs_a
         { cfg with gen_state = QCheck.pair gen_lower_person gen_upper_string }
         composed);
  ]

(* Observational equivalences: unit and associativity. *)

let packed_of bx init eq_state = Concrete.pack ~bx ~init ~eq_state

let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" }

let equiv_tests =
  [
    Equivalence.test ~count:300 ~name:"compose: id is a left unit"
      ~eq_a:Fixtures.equal_person ~eq_b:String.equal
      ~gen_a:gen_lower_person ~gen_b:gen_lower_string
      (packed_of name_bx p0 Fixtures.equal_person)
      (packed_of
         (Compose.compose (Compose.identity ()) name_bx)
         (Compose.align (Compose.identity ()) name_bx (p0, p0))
         (Esm_laws.Equality.pair Fixtures.equal_person Fixtures.equal_person));
    Equivalence.test ~count:300 ~name:"compose: id is a right unit"
      ~eq_a:Fixtures.equal_person ~eq_b:String.equal
      ~gen_a:gen_lower_person ~gen_b:gen_lower_string
      (packed_of name_bx p0 Fixtures.equal_person)
      (packed_of
         (Compose.compose name_bx (Compose.identity ()))
         (Compose.align name_bx (Compose.identity ()) (p0, p0.Fixtures.name))
         (Esm_laws.Equality.pair Fixtures.equal_person String.equal));
    (let lower_iso_bx =
       Concrete.of_lens
         (Esm_lens.Lens.of_iso ~name:"lower" String.lowercase_ascii
            String.uppercase_ascii)
     in
     let left_assoc =
       Compose.compose (Compose.compose name_bx upper_bx) lower_iso_bx
     in
     let right_assoc =
       Compose.compose name_bx (Compose.compose upper_bx lower_iso_bx)
     in
     let init_l =
       ((p0, p0.Fixtures.name), String.uppercase_ascii p0.Fixtures.name)
     in
     let init_r =
       (p0, (p0.Fixtures.name, String.uppercase_ascii p0.Fixtures.name))
     in
     Equivalence.test ~count:300
       ~name:"compose: associativity (observational)"
       ~eq_a:Fixtures.equal_person ~eq_b:String.equal
       ~gen_a:gen_lower_person ~gen_b:gen_lower_string
       (packed_of left_assoc init_l (fun _ _ -> true))
       (packed_of right_assoc init_r (fun _ _ -> true)));
  ]

(* chain_packed: n-fold self-composition of an int iso. *)
let incr_bx =
  Concrete.of_lens (Esm_lens.Lens.of_iso ~name:"incr" succ pred)

let chain_tests =
  [
    QCheck.Test.make ~count:200
      ~name:"chain_packed n: get_b adds n, set_b subtracts n"
      (QCheck.pair (QCheck.int_range 1 10) Helpers.small_int)
      (fun (n, x) ->
        let packed =
          Compose.chain_packed n
            (Concrete.pack ~bx:incr_bx ~init:0 ~eq_state:Int.equal)
        in
        match
          Program.observe packed
            [ Program.Set_a x; Program.Get_b; Program.Set_b x; Program.Get_a ]
        with
        | [ Program.Did_set; Program.Saw_b b; Program.Did_set; Program.Saw_a a ]
          ->
            b = x + n && a = x - n
        | _ -> false);
  ]

(* Heterogeneous chain across instance FAMILIES: a lens-induced bx
   composed with an algebraic-bx-induced bx.  person <-> age <-> clock
   where the clock must agree with the age's parity. *)
let hetero_tests =
  let age_bx = Concrete.of_lens Fixtures.age_lens in
  let parity_bx = Concrete.of_algebraic Fixtures.parity_undoable in
  let chain = Compose.compose age_bx parity_bx in
  let gen_hetero_state =
    QCheck.map
      (fun (p, d) ->
        let p = Fixtures.{ p with age = abs p.age } in
        (* aligned: parity state's A side = person's age *)
        (p, (p.Fixtures.age, p.Fixtures.age + (2 * d))))
      (QCheck.pair Fixtures.gen_person QCheck.small_nat)
  in
  Concrete_laws.well_behaved
    (Concrete_laws.config ~name:"compose(lens;algebraic)"
       ~gen_state:gen_hetero_state ~gen_a:Fixtures.gen_person
       ~gen_b:Helpers.small_int ~eq_a:Fixtures.equal_person ~eq_b:Int.equal
       ~eq_state:
         (Esm_laws.Equality.pair Fixtures.equal_person
            Esm_laws.Equality.(pair int int))
       ())
    chain
  @ [
      QCheck.Test.make ~count:300
        ~name:"compose(lens;algebraic): updates propagate end to end"
        (QCheck.pair gen_hetero_state Fixtures.gen_person)
        (fun (s, p) ->
          let s' = chain.Concrete.set_a p s in
          (* the C view must be parity-consistent with the new age *)
          (chain.Concrete.get_b s' - p.Fixtures.age) mod 2 = 0);
    ]

let unit_tests =
  let open Alcotest in
  [
    test_case "composite propagates A edits to C" `Quick (fun () ->
        let s = (p0, "ADA") in
        let s' =
          composed.Concrete.set_a Fixtures.{ p0 with name = "grace" } s
        in
        check string "C view" "GRACE" (composed.Concrete.get_b s'));
    test_case "composite propagates C edits to A" `Quick (fun () ->
        let s = (p0, "ADA") in
        let s' = composed.Concrete.set_b "HOPPER" s in
        check string "A view" "hopper"
          (composed.Concrete.get_a s').Fixtures.name);
    test_case "align fixes an inconsistent middle" `Quick (fun () ->
        let s = Compose.align name_bx upper_bx (p0, "WRONG") in
        check bool "aligned" true
          (Compose.aligned ~eq_mid:String.equal name_bx upper_bx s));
  ]

let suite =
  unit_tests
  @ Helpers.q (law_tests @ hetero_tests @ equiv_tests @ chain_tests)
  @ negative_tests
