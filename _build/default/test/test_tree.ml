(** Tests for named-edge trees and the Foster-style tree lenses. *)

open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

let t_ab =
  Tree.node [ ("a", Tree.value "1"); ("b", Tree.value "2") ]

let unit_tests =
  [
    test "value/to_value round trip" `Quick (fun () ->
        check Alcotest.string "decode" "x" (Tree.to_value (Tree.value "x")));
    test "to_value rejects non-values" `Quick (fun () ->
        match Tree.to_value t_ab with
        | _ -> Alcotest.fail "expected Shape_error"
        | exception Lens.Shape_error _ -> ());
    test "bind_edge replaces in place" `Quick (fun () ->
        let t = Tree.bind_edge "a" (Tree.value "9") t_ab in
        check Helpers.tree "updated"
          (Tree.node [ ("a", Tree.value "9"); ("b", Tree.value "2") ])
          t);
    test "remove_edge deletes" `Quick (fun () ->
        check Helpers.tree "removed"
          (Tree.node [ ("b", Tree.value "2") ])
          (Tree.remove_edge "a" t_ab));
    test "size counts nodes" `Quick (fun () ->
        check Alcotest.int "size" 5 (Tree.size t_ab));
    test "hoist unwraps a singleton edge" `Quick (fun () ->
        let src = Tree.node [ ("root", t_ab) ] in
        check Helpers.tree "hoisted" t_ab (Lens.get (Tree.hoist "root") src));
    test "hoist rejects multi-edge sources" `Quick (fun () ->
        match Lens.get (Tree.hoist "a") t_ab with
        | _ -> Alcotest.fail "expected Shape_error"
        | exception Lens.Shape_error _ -> ());
    test "plunge wraps under an edge" `Quick (fun () ->
        check Helpers.tree "plunged"
          (Tree.node [ ("w", t_ab) ])
          (Lens.get (Tree.plunge "w") t_ab));
    test "rename swaps the edge name" `Quick (fun () ->
        check Helpers.tree "renamed"
          (Tree.node [ ("z", Tree.value "1"); ("b", Tree.value "2") ])
          (Lens.get (Tree.rename "a" "z") t_ab));
    test "focus forgets siblings and put restores them" `Quick (fun () ->
        let l = Tree.focus "a" ~default:Tree.empty in
        check Helpers.tree "view" (Tree.value "1") (Lens.get l t_ab);
        check Helpers.tree "put restores b"
          (Tree.node [ ("a", Tree.value "9"); ("b", Tree.value "2") ])
          (Lens.put l t_ab (Tree.value "9")));
    test "prune removes and put restores from source" `Quick (fun () ->
        let l = Tree.prune "b" ~default:(Tree.value "d") in
        check Helpers.tree "view"
          (Tree.node [ ("a", Tree.value "1") ])
          (Lens.get l t_ab);
        check Helpers.tree "put"
          (Tree.node [ ("a", Tree.value "7"); ("b", Tree.value "2") ])
          (Lens.put l t_ab (Tree.node [ ("a", Tree.value "7") ])));
    test "prune falls back to the default for fresh sources" `Quick
      (fun () ->
        let l = Tree.prune "b" ~default:(Tree.value "d") in
        check Helpers.tree "default restored"
          (Tree.node [ ("x", Tree.empty); ("b", Tree.value "d") ])
          (Lens.put l Tree.empty (Tree.node [ ("x", Tree.empty) ])));
    test "map applies a lens to each child" `Quick (fun () ->
        let l = Tree.map (Tree.plunge "v") in
        check Helpers.tree "wrapped children"
          (Tree.node
             [
               ("a", Tree.node [ ("v", Tree.value "1") ]);
               ("b", Tree.node [ ("v", Tree.value "2") ]);
             ])
          (Lens.get l t_ab));
  ]

(* ------------------------------------------------------------------ *)
(* Law suites with generated trees                                     *)
(* ------------------------------------------------------------------ *)

let gen_label = QCheck.Gen.oneofl [ "x"; "y"; "z"; "v" ]

(* Random trees of bounded depth with distinct edge names per node. *)
let gen_tree_sized : Tree.t QCheck.Gen.t =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then return Tree.empty
    else
      let* n = int_bound 3 in
      let labels =
        List.filteri (fun i _ -> i < n) [ "x"; "y"; "z"; "v" ]
      in
      let* children = flatten_l (List.map (fun _ -> go (depth - 1)) labels) in
      return (Tree.node (List.combine labels children))
  in
  go 2

let gen_tree : Tree.t QCheck.arbitrary =
  QCheck.make ~print:Tree.to_string gen_tree_sized

(* Sources shaped for each lens's domain. *)
let gen_singleton_root : Tree.t QCheck.arbitrary =
  QCheck.map (fun t -> Tree.node [ ("root", t) ]) gen_tree

let gen_with_a : Tree.t QCheck.arbitrary =
  QCheck.map
    (fun (t, rest) -> Tree.bind_edge "a" t (Tree.remove_edge "a" rest))
    (QCheck.pair gen_tree gen_tree)

let gen_wrapped : Tree.t QCheck.arbitrary =
  QCheck.map (fun t -> Tree.node [ ("w", t) ]) gen_tree

let gen_without_b : Tree.t QCheck.arbitrary =
  QCheck.map (Tree.remove_edge "b") gen_tree

let law_tests =
  List.concat
    [
      Lens_laws.very_well_behaved ~name:"hoist" (Tree.hoist "root")
        ~gen_s:gen_singleton_root ~gen_v:gen_tree ~eq_s:Tree.equal
        ~eq_v:Tree.equal;
      Lens_laws.very_well_behaved ~name:"plunge" (Tree.plunge "w")
        ~gen_s:gen_tree ~gen_v:gen_wrapped ~eq_s:Tree.equal ~eq_v:Tree.equal;
      (* rename a->b on sources containing a and not b. *)
      (let gen_s =
         QCheck.map
           (fun (t, rest) ->
             Tree.bind_edge "a" t
               (Tree.remove_edge "a" (Tree.remove_edge "b" rest)))
           (QCheck.pair gen_tree gen_tree)
       in
       let gen_v =
         QCheck.map
           (fun (t, rest) ->
             Tree.bind_edge "b" t
               (Tree.remove_edge "a" (Tree.remove_edge "b" rest)))
           (QCheck.pair gen_tree gen_tree)
       in
       Lens_laws.very_well_behaved ~name:"rename" (Tree.rename "a" "b")
         ~gen_s ~gen_v ~eq_s:Tree.equal ~eq_v:Tree.equal);
      Lens_laws.very_well_behaved ~name:"focus a"
        (Tree.focus "a" ~default:Tree.empty)
        ~gen_s:gen_with_a ~gen_v:gen_tree ~eq_s:Tree.equal ~eq_v:Tree.equal;
      (* prune is well-behaved on sources that contain the pruned edge
         (on edge-free sources GetPut would invent the default). *)
      (let gen_s_with_b =
         QCheck.map
           (fun (t, rest) -> Tree.bind_edge "b" t rest)
           (QCheck.pair gen_tree gen_tree)
       in
       Lens_laws.well_behaved ~name:"prune b"
         (Tree.prune "b" ~default:(Tree.value "d"))
         ~gen_s:gen_s_with_b ~gen_v:gen_without_b ~eq_s:Tree.equal
         ~eq_v:Tree.equal);
      (* hoist;plunge composition: identity on singleton-root sources. *)
      Lens_laws.very_well_behaved ~name:"hoist;plunge"
        Lens.(Tree.hoist "root" // Tree.plunge "root")
        ~gen_s:gen_singleton_root ~gen_v:gen_singleton_root ~eq_s:Tree.equal
        ~eq_v:Tree.equal;
    ]

let at_tests =
  [
    Alcotest.test_case "at applies a lens under one edge" `Quick (fun () ->
        let l = Tree.at "a" (Tree.plunge "v") in
        check Helpers.tree "wrapped"
          (Tree.node
             [
               ("a", Tree.node [ ("v", Tree.value "1") ]);
               ("b", Tree.value "2");
             ])
          (Lens.get l t_ab));
  ]

let at_law_tests =
  (* at "a" (plunge "v"): sources containing edge a; views with the
     wrapped child. *)
  let wrap t =
    Tree.bind_edge "a" (Tree.node [ ("v", Option.get (Tree.lookup "a" t)) ]) t
  in
  Lens_laws.very_well_behaved ~name:"at a (plunge v)"
    (Tree.at "a" (Tree.plunge "v"))
    ~gen_s:gen_with_a
    ~gen_v:(QCheck.map wrap gen_with_a)
    ~eq_s:Tree.equal ~eq_v:Tree.equal

let _ = gen_label

let suite = unit_tests @ at_tests @ Helpers.q (law_tests @ at_law_tests)
