(** The two-cell algebraic state theory (paper §2: "an algebraic theory
    of reads and writes, with seven equations") and its boundary with
    entanglement: the independent-cell normal form is valid for the pair
    semantics but unsound for entangled semantics. *)

module Theory = Esm_monad.Two_cell_theory.Make (struct
  type t = int
end) (struct
  type t = string
end)

let states = [ (0, ""); (1, "x"); (-3, "abc"); (7, "x"); (42, "hello") ]

let term_equal ?(eq_x = ( = )) t1 t2 =
  Theory.equal_on ~eq_x ~eq_a:Int.equal ~eq_b:String.equal states t1 t2

let check = Alcotest.check
let test = Alcotest.test_case

open Theory

let seven_laws_tests =
  [
    test "per-cell laws hold under the pair semantics" `Quick (fun () ->
        (* (GS) for each cell *)
        check Alcotest.bool "GS a" true
          (term_equal (Term.bind get_a set_a) (Term.return ()));
        check Alcotest.bool "GS b" true
          (term_equal (Term.bind get_b set_b) (Term.return ()));
        (* (SG) *)
        check Alcotest.bool "SG a" true
          (term_equal
             (Term.bind (set_a 5) (fun () -> get_a))
             (Term.bind (set_a 5) (fun () -> Term.return 5)));
        (* (SS) *)
        check Alcotest.bool "SS b" true
          (term_equal
             (Term.bind (set_b "u") (fun () -> set_b "v"))
             (set_b "v")));
    test "commutation laws hold under the pair semantics" `Quick (fun () ->
        (* get_a/get_b commute *)
        check Alcotest.bool "gets commute" true
          (term_equal
             (Term.bind get_a (fun a -> Term.bind get_b (fun b -> Term.return (a, b))))
             (Term.bind get_b (fun b -> Term.bind get_a (fun a -> Term.return (a, b)))));
        (* set_a/set_b commute *)
        check Alcotest.bool "sets commute" true
          (term_equal
             (Term.bind (set_a 1) (fun () -> set_b "y"))
             (Term.bind (set_b "y") (fun () -> set_a 1)));
        (* set_a/get_b commute *)
        check Alcotest.bool "set_a/get_b commute" true
          (term_equal
             (Term.bind (set_a 1) (fun () -> get_b))
             (Term.bind get_b (fun b ->
                  Term.bind (set_a 1) (fun () -> Term.return b)))));
  ]

(* Random two-cell programs. *)
let gen_term : int Theory.Term.t QCheck.arbitrary =
  QCheck.map
    (fun spec ->
      List.fold_left
        (fun acc instr ->
          Term.bind acc (fun x ->
              match instr mod 5 with
              | 0 -> Term.bind get_a (fun a -> Term.return (a + x))
              | 1 -> Term.bind (set_a x) (fun () -> Term.return x)
              | 2 ->
                  Term.bind get_b (fun b ->
                      Term.return (x + String.length b))
              | 3 ->
                  Term.bind (set_b (String.make (abs x mod 5) 'z')) (fun () ->
                      Term.return x)
              | _ -> Term.return (x * 2)))
        (Term.return 1)
        spec)
    (QCheck.small_list QCheck.small_nat)

let normal_form_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"two-cell: every term equals its read-both/write-both normal form"
      gen_term
      (fun t -> term_equal ~eq_x:Int.equal t (Theory.canonical t));
    QCheck.Test.make ~count:300
      ~name:"two-cell: canonical performs exactly four operations"
      (QCheck.pair gen_term (QCheck.pair Helpers.small_int Helpers.short_string))
      (fun (t, s) -> Theory.ops_performed (Theory.canonical t) s = 4);
  ]

(* The boundary with entanglement: interpret the same free terms against
   the parity set-bx.  The per-term normal form is UNSOUND there. *)
let parity_bx = Esm_core.Concrete.of_algebraic Fixtures.parity_undoable

module Int_theory = Esm_monad.Two_cell_theory.Make (struct
  type t = int
end) (struct
  type t = int
end)

let denote_parity m s =
  Int_theory.denote_entangled
    ~get_a:parity_bx.Esm_core.Concrete.get_a
    ~set_a:parity_bx.Esm_core.Concrete.set_a
    ~get_b:parity_bx.Esm_core.Concrete.get_b
    ~set_b:parity_bx.Esm_core.Concrete.set_b m s

let entanglement_boundary_tests =
  [
    test "single-cell laws survive the entangled interpretation" `Quick
      (fun () ->
        let open Int_theory in
        (* (GS a): get_a >>= set_a = return () *)
        let lhs = Term.bind get_a set_a in
        List.iter
          (fun s ->
            let (), s1 = denote_parity lhs s in
            Alcotest.(check (pair int int)) "GS" s s1)
          [ (0, 0); (2, 4); (-1, 3) ]);
    test "the independent normal form is UNSOUND under entanglement" `Quick
      (fun () ->
        let open Int_theory in
        (* set_a 1 >> set_b 4 >> set_a 1 on the parity bx from (0,0)
           ends in (1,5) — the final set_a repairs b.  Its two-cell
           canonical form (which assumed the seven-equation independent
           theory, in particular (SS) across the interleaved set_b)
           collapses to set_a 1 >> set_b 4 and ends in (0,4).
           Entanglement refuses the independent-cell theory — exactly
           the paper's point in Section 3.4. *)
        let prog =
          Term.bind (set_a 1) (fun () ->
              Term.bind (set_b 4) (fun () -> set_a 1))
        in
        let (), direct = denote_parity prog (0, 0) in
        let (), collapsed = denote_parity (canonical prog) (0, 0) in
        Alcotest.(check (pair int int)) "direct" (1, 5) direct;
        Alcotest.(check bool) "normal form disagrees" false
          (direct = collapsed));
  ]

let suite =
  seven_laws_tests @ Helpers.q normal_form_tests @ entanglement_boundary_tests
