(** Multi-directional entanglement: three views over shared state.  Each
    binary face of the tri-bx satisfies the set-bx laws on aligned
    states, and a set on any one side is visible from the other two. *)

open Esm_core

let name_bx = Concrete.of_lens Fixtures.name_lens

let upper_bx =
  Concrete.of_lens
    (Esm_lens.Lens.of_iso ~name:"upper" String.uppercase_ascii
       String.lowercase_ascii)

(* person <-> name <-> NAME, with all three views exposed. *)
let tri = Multiway.of_chain name_bx upper_bx

let p0 = Fixtures.{ name = "ada"; age = 36; email = "a@x" }

let gen_lower_person =
  QCheck.map
    (fun p -> Fixtures.{ p with name = String.lowercase_ascii p.name })
    Fixtures.gen_person

let gen_aligned : (Fixtures.person * string) QCheck.arbitrary =
  QCheck.map (fun p -> (p, p.Fixtures.name)) gen_lower_person

let gen_lower = QCheck.map String.lowercase_ascii Helpers.short_string
let gen_upper = QCheck.map String.uppercase_ascii Helpers.short_string
let eq_state = Esm_laws.Equality.pair Fixtures.equal_person String.equal

(* Laws on every face. *)

let face_ab_tests =
  Concrete_laws.overwriteable
    (Concrete_laws.config ~name:"multiway.face_ab" ~gen_state:gen_aligned
       ~gen_a:gen_lower_person ~gen_b:gen_lower ~eq_a:Fixtures.equal_person
       ~eq_b:String.equal ~eq_state ())
    (Multiway.face_ab tri)

let face_bc_tests =
  Concrete_laws.overwriteable
    (Concrete_laws.config ~name:"multiway.face_bc" ~gen_state:gen_aligned
       ~gen_a:gen_lower ~gen_b:gen_upper ~eq_a:String.equal
       ~eq_b:String.equal ~eq_state ())
    (Multiway.face_bc tri)

let outer_tests =
  Concrete_laws.overwriteable
    (Concrete_laws.config ~name:"multiway.to_binary" ~gen_state:gen_aligned
       ~gen_a:gen_lower_person ~gen_b:gen_upper ~eq_a:Fixtures.equal_person
       ~eq_b:String.equal ~eq_state ())
    (Multiway.to_binary tri)

(* The middle view stays aligned with both ends after any update. *)
let alignment_test =
  QCheck.Test.make ~count:500 ~name:"multiway: all three views stay aligned"
    (QCheck.pair gen_aligned
       (QCheck.oneof
          [
            QCheck.map (fun p -> Multiway.Set_a p) gen_lower_person;
            QCheck.map (fun b -> Multiway.Set_b b) gen_lower;
            QCheck.map (fun c -> Multiway.Set_c c) gen_upper;
          ]))
    (fun (s, op) ->
      let s' = Multiway.apply tri op s in
      String.equal (tri.Multiway.get_b s')
        (tri.Multiway.get_a s').Fixtures.name
      && String.equal (tri.Multiway.get_c s')
           (String.uppercase_ascii (tri.Multiway.get_b s')))

let unit_tests =
  let open Alcotest in
  [
    test_case "set_a reaches both b and c" `Quick (fun () ->
        let s = (p0, "ada") in
        let s' = tri.Multiway.set_a Fixtures.{ p0 with name = "grace" } s in
        check string "b view" "grace" (tri.Multiway.get_b s');
        check string "c view" "GRACE" (tri.Multiway.get_c s'));
    test_case "set_b reaches both a and c" `Quick (fun () ->
        let s' = tri.Multiway.set_b "hopper" (p0, "ada") in
        check string "a view" "hopper" (tri.Multiway.get_a s').Fixtures.name;
        check string "c view" "HOPPER" (tri.Multiway.get_c s'));
    test_case "set_c reaches both a and b" `Quick (fun () ->
        let s' = tri.Multiway.set_c "CURRY" (p0, "ada") in
        check string "a view" "curry" (tri.Multiway.get_a s').Fixtures.name;
        check string "b view" "curry" (tri.Multiway.get_b s'));
  ]

let suite =
  unit_tests
  @ Helpers.q (face_ab_tests @ face_bc_tests @ outer_tests @ [ alignment_test ])
