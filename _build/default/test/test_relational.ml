(** Tests for the relational substrate: values, schemas, rows, tables
    (set semantics), the predicate language and the relational algebra. *)

open Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let people_schema =
  Schema.make [ ("id", Value.Tint); ("name", Value.Tstr); ("age", Value.Tint) ]

let people =
  Table.of_lists people_schema
    [
      [ Value.Int 1; Value.Str "ada"; Value.Int 36 ];
      [ Value.Int 2; Value.Str "brian"; Value.Int 41 ];
      [ Value.Int 3; Value.Str "carol"; Value.Int 36 ];
    ]

let dept_schema =
  Schema.make [ ("id", Value.Tint); ("dept", Value.Tstr) ]

let depts =
  Table.of_lists dept_schema
    [
      [ Value.Int 1; Value.Str "eng" ];
      [ Value.Int 2; Value.Str "ops" ];
      [ Value.Int 9; Value.Str "sales" ];
    ]

let value_tests =
  [
    test "type_of classifies" `Quick (fun () ->
        check Alcotest.bool "int" true
          (Value.equal_ty (Value.type_of (Value.Int 3)) Value.Tint);
        check Alcotest.bool "str" true
          (Value.equal_ty (Value.type_of (Value.Str "x")) Value.Tstr));
    test "compare orders within a type" `Quick (fun () ->
        check Alcotest.bool "lt" true
          (Value.compare (Value.Int 1) (Value.Int 2) < 0));
    test "defaults have the right type" `Quick (fun () ->
        List.iter
          (fun ty ->
            check Alcotest.bool "typed" true
              (Value.equal_ty ty (Value.type_of (Value.default_of_type ty))))
          [ Value.Tint; Value.Tstr; Value.Tbool ]);
  ]

let schema_tests =
  [
    test "make rejects duplicate columns" `Quick (fun () ->
        match Schema.make [ ("x", Value.Tint); ("x", Value.Tstr) ] with
        | _ -> Alcotest.fail "expected Schema_error"
        | exception Schema.Schema_error _ -> ());
    test "index finds positions" `Quick (fun () ->
        check Alcotest.int "name" 1 (Schema.index people_schema "name"));
    test "project keeps order given" `Quick (fun () ->
        check
          Alcotest.(list string)
          "reordered" [ "age"; "id" ]
          (Schema.column_names (Schema.project people_schema [ "age"; "id" ])));
    test "rename maps mentioned columns only" `Quick (fun () ->
        check
          Alcotest.(list string)
          "renamed" [ "pk"; "name"; "age" ]
          (Schema.column_names
             (Schema.rename people_schema [ ("id", "pk") ])));
    test "shared requires matching types" `Quick (fun () ->
        check
          Alcotest.(list string)
          "id shared" [ "id" ]
          (Schema.shared people_schema dept_schema));
  ]

let row_tests =
  [
    test "get fetches by column name" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 7; Value.Str "x"; Value.Int 1 ] in
        check Helpers.value "name" (Value.Str "x")
          (Row.get people_schema r "name"));
    test "set is non-destructive" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 7; Value.Str "x"; Value.Int 1 ] in
        let r' = Row.set people_schema r "age" (Value.Int 9) in
        check Helpers.value "updated" (Value.Int 9)
          (Row.get people_schema r' "age");
        check Helpers.value "original intact" (Value.Int 1)
          (Row.get people_schema r "age"));
    test "conforms checks arity and types" `Quick (fun () ->
        check Alcotest.bool "bad arity" false
          (Row.conforms people_schema (Row.of_list [ Value.Int 1 ]));
        check Alcotest.bool "bad type" false
          (Row.conforms people_schema
             (Row.of_list [ Value.Str "x"; Value.Str "y"; Value.Int 1 ])));
  ]

let table_tests =
  [
    test "of_rows dedups and sorts (set semantics)" `Quick (fun () ->
        let t =
          Table.of_lists dept_schema
            [
              [ Value.Int 2; Value.Str "b" ];
              [ Value.Int 1; Value.Str "a" ];
              [ Value.Int 2; Value.Str "b" ];
            ]
        in
        check Alcotest.int "two rows" 2 (Table.cardinality t));
    test "of_rows rejects ill-typed rows" `Quick (fun () ->
        match Table.of_lists dept_schema [ [ Value.Str "x"; Value.Str "y" ] ] with
        | _ -> Alcotest.fail "expected Table_error"
        | exception Table.Table_error _ -> ());
    test "insert is idempotent on duplicates" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 1; Value.Str "eng" ] in
        check Helpers.table "same" depts (Table.insert depts r));
    test "delete removes exactly the row" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 9; Value.Str "sales" ] in
        check Alcotest.int "one fewer" 2
          (Table.cardinality (Table.delete depts r)));
    test "pretty-printer renders all rows" `Quick (fun () ->
        let rendered = Table.to_string depts in
        check Alcotest.bool "mentions sales" true
          (String.length rendered > 0
          && Option.is_some
               (String.index_opt rendered 's')));
  ]

let pred_tests =
  [
    test "comparison and connectives evaluate" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 36 ] in
        let p = Pred.(col "age" = int 36 && not_ (col "name" = str "bob")) in
        check Alcotest.bool "holds" true (Pred.eval people_schema p r));
    test "lt/le compare values" `Quick (fun () ->
        let r = Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 36 ] in
        check Alcotest.bool "lt" true
          (Pred.eval people_schema Pred.(col "age" < int 40) r);
        check Alcotest.bool "le" true
          (Pred.eval people_schema Pred.(col "age" <= int 36) r));
    test "columns_used collects references" `Quick (fun () ->
        check
          Alcotest.(slist string String.compare)
          "cols" [ "age"; "name" ]
          (Pred.columns_used Pred.(col "age" = int 1 || col "name" = str "x")));
  ]

let algebra_tests =
  [
    test "select filters by predicate" `Quick (fun () ->
        let t = Algebra.select Pred.(col "age" = int 36) people in
        check Alcotest.int "two rows" 2 (Table.cardinality t));
    test "project drops and dedups" `Quick (fun () ->
        let t = Algebra.project [ "age" ] people in
        check Alcotest.int "ages dedup" 2 (Table.cardinality t));
    test "rename preserves rows" `Quick (fun () ->
        let t = Algebra.rename [ ("name", "who") ] people in
        check Alcotest.int "same rows" 3 (Table.cardinality t);
        check Alcotest.bool "col renamed" true
          (Schema.mem (Table.schema t) "who"));
    test "union / diff / inter respect set semantics" `Quick (fun () ->
        let evens = Algebra.select Pred.(col "age" = int 36) people in
        check Helpers.table "union is identity" people
          (Algebra.union people evens);
        check Alcotest.int "diff" 1
          (Table.cardinality (Algebra.diff people evens));
        check Helpers.table "inter" evens (Algebra.inter people evens));
    test "product concatenates schemas" `Quick (fun () ->
        let renamed = Algebra.rename [ ("id", "did") ] depts in
        let t = Algebra.product people renamed in
        check Alcotest.int "cartesian" 9 (Table.cardinality t);
        check Alcotest.int "arity" 5 (Schema.arity (Table.schema t)));
    test "natural join matches shared columns" `Quick (fun () ->
        let t = Algebra.join people depts in
        check Alcotest.int "two matches" 2 (Table.cardinality t);
        check
          Alcotest.(list string)
          "schema" [ "id"; "name"; "age"; "dept" ]
          (Schema.column_names (Table.schema t)));
    test "join with no shared columns is the product" `Quick (fun () ->
        let renamed = Algebra.rename [ ("id", "did"); ("dept", "d") ] depts in
        check Alcotest.int "product size" 9
          (Table.cardinality (Algebra.join people renamed)));
  ]

(* Property tests: algebraic identities. *)

let gen_table : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 30 in
      return (Workload.employees ~seed ~size))

let prop_tests =
  [
    QCheck.Test.make ~count:100 ~name:"select distributes over union"
      (QCheck.pair gen_table gen_table)
      (fun (t1, t2) ->
        let p = Pred.(col "dept" = str "Engineering") in
        Table.equal
          (Algebra.select p (Algebra.union t1 t2))
          (Algebra.union (Algebra.select p t1) (Algebra.select p t2)));
    QCheck.Test.make ~count:100 ~name:"select is idempotent" gen_table
      (fun t ->
        let p = Pred.(col "salary" < int 70_000) in
        let once = Algebra.select p t in
        Table.equal once (Algebra.select p once));
    QCheck.Test.make ~count:100 ~name:"projection is idempotent" gen_table
      (fun t ->
        let cols = [ "id"; "name" ] in
        let once = Algebra.project cols t in
        Table.equal once (Algebra.project cols once));
    QCheck.Test.make ~count:100 ~name:"rename round-trips" gen_table (fun t ->
        Table.equal t
          (Algebra.rename
             [ ("pk", "id") ]
             (Algebra.rename [ ("id", "pk") ] t)));
    QCheck.Test.make ~count:100
      ~name:"join after disjoint split by selection recovers no extra rows"
      gen_table
      (fun t ->
        let keyed = Algebra.project [ "id"; "name" ] t in
        let rest = Algebra.project [ "id"; "dept"; "salary" ] t in
        let joined = Algebra.join keyed rest in
        (* ids are unique in the workload, so the join recovers exactly
           the projection of t onto the union of the two column sets. *)
        Table.equal
          (Algebra.project [ "id"; "name"; "dept"; "salary" ] t)
          joined);
  ]

let aggregate_tests =
  [
    test "group_by count per department" `Quick (fun () ->
        let t =
          Algebra.group_by ~keys:[ "age" ] ~aggs:[ ("n", Algebra.Count) ]
            people
        in
        check Alcotest.int "two groups" 2 (Table.cardinality t);
        let thirty_six =
          List.find
            (fun r -> Value.equal (Row.get (Table.schema t) r "age") (Value.Int 36))
            (Table.rows t)
        in
        check Helpers.value "count" (Value.Int 2)
          (Row.get (Table.schema t) thirty_six "n"));
    test "group_by sum/avg/min/max" `Quick (fun () ->
        let t =
          Algebra.group_by ~keys:[]
            ~aggs:
              [
                ("total", Algebra.Sum "age");
                ("mean", Algebra.Avg "age");
                ("young", Algebra.Min "age");
                ("old", Algebra.Max "age");
              ]
            people
        in
        let r = List.hd (Table.rows t) in
        let s = Table.schema t in
        check Helpers.value "sum" (Value.Int 113) (Row.get s r "total");
        check Helpers.value "avg" (Value.Int 37) (Row.get s r "mean");
        check Helpers.value "min" (Value.Int 36) (Row.get s r "young");
        check Helpers.value "max" (Value.Int 41) (Row.get s r "old"));
    test "group_by rejects summing strings" `Quick (fun () ->
        match
          Algebra.group_by ~keys:[] ~aggs:[ ("x", Algebra.Sum "name") ] people
        with
        | _ -> Alcotest.fail "expected Table_error"
        | exception Table.Table_error _ -> ());
    test "sort_rows orders by the given columns" `Quick (fun () ->
        let sorted = Algebra.sort_rows ~by:[ "age"; "name" ] people in
        let first = List.hd sorted in
        check Helpers.value "youngest first" (Value.Str "ada")
          (Row.get people_schema first "name");
        let sorted_desc = Algebra.sort_rows ~by:[ "age" ] ~desc:true people in
        check Helpers.value "oldest first" (Value.Int 41)
          (Row.get people_schema (List.hd sorted_desc) "age"));
  ]

let aggregate_prop_tests =
  [
    QCheck.Test.make ~count:100
      ~name:"group_by Count sums to the table cardinality" gen_table
      (fun t ->
        let g =
          Algebra.group_by ~keys:[ "dept" ] ~aggs:[ ("n", Algebra.Count) ] t
        in
        let total =
          List.fold_left
            (fun acc r ->
              match Row.get (Table.schema g) r "n" with
              | Value.Int n -> acc + n
              | _ -> acc)
            0 (Table.rows g)
        in
        total = Table.cardinality t);
    QCheck.Test.make ~count:100
      ~name:"Min <= Avg <= Max on every salary group" gen_table
      (fun t ->
        QCheck.assume (Table.cardinality t > 0);
        let g =
          Algebra.group_by ~keys:[ "dept" ]
            ~aggs:
              [
                ("lo", Algebra.Min "salary");
                ("mid", Algebra.Avg "salary");
                ("hi", Algebra.Max "salary");
              ]
            t
        in
        List.for_all
          (fun r ->
            let s = Table.schema g in
            Value.compare (Row.get s r "lo") (Row.get s r "mid") <= 0
            && Value.compare (Row.get s r "mid") (Row.get s r "hi") <= 0)
          (Table.rows g));
  ]

let suite =
  value_tests @ schema_tests @ row_tests @ table_tests @ pred_tests
  @ algebra_tests @ aggregate_tests
  @ Helpers.q (prop_tests @ aggregate_prop_tests)
