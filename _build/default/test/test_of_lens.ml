(** Lemma 4: a well-behaved asymmetric lens yields a set-bx over the
    source state; very-well-behaved lenses yield overwriteable set-bx.

    Validated for: a record field lens (vwb), the pair fst lens (vwb), a
    relational select lens over tables (vwb), and the counted lens (wb
    but not vwb — the induced set-bx satisfies the laws but fails (SS),
    confirming the "overwriteable" refinement is exactly (PutPut)). *)

open Esm_core

(* Instance 1: person.name field lens. *)
module Name_bx = Of_lens.Make (struct
  type s = Fixtures.person
  type v = string

  let lens = Fixtures.name_lens
  let equal_s = Fixtures.equal_person
end)

module Name_laws = Bx_laws.Set_bx (Name_bx)

(* Instance 2: fst lens on int * string. *)
module Fst_bx = Of_lens.Make (struct
  type s = int * string
  type v = int

  let lens = Esm_lens.Lens.fst_lens
  let equal_s = Esm_laws.Equality.(pair int string)
end)

module Fst_laws = Bx_laws.Set_bx (Fst_bx)

(* Instance 3: relational select lens — the database workload from the
   paper's motivation. *)
module Select_bx = Of_lens.Make (struct
  type s = Esm_relational.Table.t
  type v = Esm_relational.Table.t

  let lens =
    Esm_relational.Rlens.select
      Esm_relational.Pred.(col "dept" = str "Engineering")

  let equal_s = Esm_relational.Table.equal
end)

module Select_laws = Bx_laws.Set_bx (Select_bx)

(* Instance 4: a TREE lens — the document workload from the paper's
   motivation ("XML files, abstract syntax trees"). *)
module Tree_bx = Of_lens.Make (struct
  type s = Esm_lens.Tree.t
  type v = Esm_lens.Tree.t

  let lens = Esm_lens.Tree.prune "meta" ~default:Esm_lens.Tree.empty
  let equal_s = Esm_lens.Tree.equal
end)

module Tree_laws = Bx_laws.Set_bx (Tree_bx)

(* Instance 5: the counted lens — wb but not vwb. *)
module Counted_bx = Of_lens.Make (struct
  type s = Fixtures.counted
  type v = int

  let lens = Fixtures.counted_lens
  let equal_s = Fixtures.equal_counted
end)

module Counted_laws = Bx_laws.Set_bx (Counted_bx)

let gen_table =
  QCheck.make ~print:Esm_relational.Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 20 in
      return (Esm_relational.Workload.employees ~seed ~size))

let gen_tree_small : Esm_lens.Tree.t QCheck.arbitrary =
  QCheck.make ~print:Esm_lens.Tree.to_string
    QCheck.Gen.(
      let* n = int_bound 3 in
      let labels = List.filteri (fun i _ -> i < n) [ "x"; "y"; "z" ] in
      return
        (Esm_lens.Tree.node
           (List.map (fun l -> (l, Esm_lens.Tree.value l)) labels)))

(* prune's domain: sources with the pruned edge, views without it. *)
let gen_tree_with_meta =
  QCheck.map
    (fun t -> Esm_lens.Tree.bind_edge "meta" (Esm_lens.Tree.value "m") t)
    gen_tree_small

let gen_eng_view =
  QCheck.map
    (Esm_relational.Algebra.select
       Esm_relational.Pred.(col "dept" = str "Engineering"))
    gen_table

let law_tests =
  List.concat
    [
      Name_laws.overwriteable
        (Name_laws.config ~name:"of_lens(person.name)"
           ~gen_state:Fixtures.gen_person ~gen_a:Fixtures.gen_person
           ~gen_b:Helpers.short_string ~eq_a:Fixtures.equal_person
           ~eq_b:String.equal ());
      Fst_laws.overwriteable
        (Fst_laws.config ~name:"of_lens(fst)"
           ~gen_state:Helpers.pair_int_string ~gen_a:Helpers.pair_int_string
           ~gen_b:Helpers.small_int
           ~eq_a:Esm_laws.Equality.(pair int string)
           ~eq_b:Int.equal ());
      Select_laws.overwriteable
        (Select_laws.config ~count:60 ~name:"of_lens(rlens select)"
           ~gen_state:gen_table ~gen_a:gen_table ~gen_b:gen_eng_view
           ~eq_a:Esm_relational.Table.equal ~eq_b:Esm_relational.Table.equal
           ());
      Tree_laws.well_behaved
        (Tree_laws.config ~count:150 ~name:"of_lens(tree prune)"
           ~gen_state:gen_tree_with_meta ~gen_a:gen_tree_with_meta
           ~gen_b:gen_tree_small ~eq_a:Esm_lens.Tree.equal
           ~eq_b:Esm_lens.Tree.equal ());
      (* wb lens: laws hold ... *)
      Counted_laws.well_behaved
        (Counted_laws.config ~name:"of_lens(counted)"
           ~gen_state:Fixtures.gen_counted ~gen_a:Fixtures.gen_counted
           ~gen_b:Helpers.small_int ~eq_a:Fixtures.equal_counted
           ~eq_b:Int.equal ());
    ]

let negative_tests =
  [
    (* ... but (SS) on the B side fails: the counter distinguishes
       overwrite-twice from write-once. *)
    Helpers.expect_law_failure "of_lens(counted) is not overwriteable"
      (Counted_laws.B_cell.ss
         (Counted_laws.B_cell.config ~name:"of_lens(counted).B"
            ~gen_world:Fixtures.gen_counted ~gen_value:Helpers.small_int
            ~eq_value:Int.equal ()));
  ]

(* Direct behavioural checks of the paper's defining equations. *)
let unit_tests =
  let open Alcotest in
  [
    test_case "get_b reads through the lens" `Quick (fun () ->
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let name, p' = Name_bx.run Name_bx.get_b p in
        check string "view" "ada" name;
        check bool "state untouched" true (Fixtures.equal_person p p'));
    test_case "set_b writes through the lens (entanglement!)" `Quick
      (fun () ->
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let (), p' = Name_bx.run (Name_bx.set_b "grace") p in
        check string "A side changed by a B set" "grace" p'.Fixtures.name;
        check int "other fields kept" 1 p'.Fixtures.age);
    test_case "set_a replaces the whole source" `Quick (fun () ->
        let p = Fixtures.{ name = "a"; age = 1; email = "e" } in
        let q = Fixtures.{ name = "b"; age = 2; email = "f" } in
        let (), p' = Name_bx.run (Name_bx.set_a q) p in
        check bool "replaced" true (Fixtures.equal_person q p'));
    test_case "monadic pipeline: read, modify, read" `Quick (fun () ->
        let open Name_bx.Syntax in
        let prog =
          let* n = Name_bx.get_b in
          let* () = Name_bx.set_b (String.uppercase_ascii n) in
          Name_bx.get_a
        in
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let result, _ = Name_bx.run prog p in
        check string "uppercased" "ADA" result.Fixtures.name);
  ]

let suite = unit_tests @ Helpers.q law_tests @ negative_tests
