(** Section 3.4 (Entanglement): the pair state monad satisfies the extra
    commutation law [set_a a >> set_b b = set_b b >> set_a a]; a genuine
    entangled instance does not — setting one side changes the other to
    restore consistency, so the order of sets matters. *)

open Esm_core

module Pair = Pair_bx.Make (struct
  type ta = int
  type tb = string

  let equal_a = Int.equal
  let equal_b = String.equal
end)

module Pair_laws = Bx_laws.Set_bx (Pair)

module Parity = Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = Fixtures.parity_undoable
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Parity_laws = Bx_laws.Set_bx (Parity)

(* The name lens induces entanglement between a person and their name. *)
module Name = Of_lens.Make (struct
  type s = Fixtures.person
  type v = string

  let lens = Fixtures.name_lens
  let equal_s = Fixtures.equal_person
end)

module Name_laws = Bx_laws.Set_bx (Name)

let pair_cfg =
  Pair_laws.config ~name:"pair"
    ~gen_state:Helpers.pair_int_string ~gen_a:Helpers.small_int
    ~gen_b:Helpers.short_string ~eq_a:Int.equal ~eq_b:String.equal ()

let positive_tests =
  (* The pair monad is an overwriteable set-bx AND commutes. *)
  Pair_laws.overwriteable pair_cfg @ [ Pair_laws.sets_commute pair_cfg ]

let negative_tests =
  [
    (* Entangled instances do NOT commute. *)
    Helpers.expect_law_failure "of_algebraic(parity): sets do not commute"
      (Parity_laws.sets_commute
         (Parity_laws.config ~name:"parity"
            ~gen_state:Fixtures.gen_parity_consistent
            ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
            ~eq_b:Int.equal ()));
    Helpers.expect_law_failure "of_lens(name): sets do not commute"
      (Name_laws.sets_commute
         (Name_laws.config ~name:"name" ~gen_state:Fixtures.gen_person
            ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string
            ~eq_a:Fixtures.equal_person ~eq_b:String.equal ()));
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "paper's witness: set order matters under entanglement" `Quick
      (fun () ->
        (* With the parity bx from (0, 0): set_a 1 then set_b 4 leaves
           (5, 4)... setting B last repairs A; the other order repairs B.
           The final states differ. *)
        let open Parity.Infix in
        let (), s_ab = Parity.run (Parity.set_a 1 >> Parity.set_b 4) (0, 0) in
        let (), s_ba = Parity.run (Parity.set_b 4 >> Parity.set_a 1) (0, 0) in
        check bool "different final states" false (s_ab = s_ba));
    test_case "pair state monad: set order never matters" `Quick (fun () ->
        let open Pair.Infix in
        let (), s1 = Pair.run (Pair.set_a 1 >> Pair.set_b "x") (0, "") in
        let (), s2 = Pair.run (Pair.set_b "x" >> Pair.set_a 1) (0, "") in
        check bool "same" true (s1 = s2));
    test_case "entanglement via lens: set_b rewrites the A view" `Quick
      (fun () ->
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let open Name.Infix in
        let a, _ = Name.run (Name.set_b "grace" >> Name.get_a) p in
        check string "A sees the B write" "grace" a.Fixtures.name);
  ]

let suite = unit_tests @ Helpers.q positive_tests @ negative_tests
