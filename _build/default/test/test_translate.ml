(** Lemmas 1–3 (Section 3.3): the translations between set-bx and put-bx.

    - Lemma 1: [set2pp] of a lawful (overwriteable) set-bx is a lawful
      (overwriteable) put-bx — checked by deriving a put-bx from each
      set-bx instance and running the put-bx law suites.
    - Lemma 2: [pp2set] of a lawful put-bx is a lawful set-bx — checked
      by deriving a set-bx from the Lemma-6 put-bx and running the set-bx
      suites.
    - Lemma 3: the translations are mutually inverse — checked both at
      the level of operations (extensional equality of
      [pp2set(set2pp(t))] against [t]) and observationally over random
      programs at the record level. *)

open Esm_core

(* --- Lemma 1: set2pp over the Lemma-4 instance ------------------- *)

module Name_set = Of_lens.Make (struct
  type s = Fixtures.person
  type v = string

  let lens = Fixtures.name_lens
  let equal_s = Fixtures.equal_person
end)

module Name_put = Translate.Set_to_put_stateful (Name_set)
module Name_put_laws = Bx_laws.Put_bx (Name_put)

(* set2pp over the Lemma-5 instance (parity). *)
module Parity_set = Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = Fixtures.parity_undoable
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Parity_put = Translate.Set_to_put_stateful (Parity_set)
module Parity_put_laws = Bx_laws.Put_bx (Parity_put)

(* --- Lemma 2: pp2set over the Lemma-6 instance -------------------- *)

module Double_instance = struct
  include
    (val Esm_symlens.Symlens.to_instance Fixtures.double_iso
      : Esm_symlens.Symlens.INSTANCE with type a = int and type b = int)
end

module Double_put = Of_symmetric.Make (Double_instance) (struct
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Double_set = Translate.Put_to_set_stateful (Double_put)
module Double_set_laws = Bx_laws.Set_bx (Double_set)

(* --- Lemma 3: round trips ----------------------------------------- *)

module Name_rt = Translate.Put_to_set_stateful (Name_put)
(* Name_rt = pp2set(set2pp(Name_set)): must agree with Name_set. *)

module Double_rt = Translate.Set_to_put_stateful (Double_set)
(* Double_rt = set2pp(pp2set(Double_put)): must agree with Double_put. *)

let gen_double_state : (int * int * Double_instance.c) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (a, b, _) -> Printf.sprintf "(%d, %d, _)" a b)
    QCheck.Gen.(
      map
        (fun a ->
          let b, c = Double_instance.put_r a Double_instance.init in
          (a, b, c))
        small_int)

let gen_even = QCheck.map (fun x -> 2 * x) Helpers.small_int

let lemma1_tests =
  List.concat
    [
      Name_put_laws.overwriteable
        (Name_put_laws.config ~name:"set2pp(of_lens name)"
           ~gen_state:Fixtures.gen_person ~gen_a:Fixtures.gen_person
           ~gen_b:Helpers.short_string ~eq_a:Fixtures.equal_person
           ~eq_b:String.equal ());
      Parity_put_laws.overwriteable
        (Parity_put_laws.config ~name:"set2pp(of_algebraic parity)"
           ~gen_state:Fixtures.gen_parity_consistent ~gen_a:Helpers.small_int
           ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ());
    ]

let lemma2_tests =
  Double_set_laws.overwriteable
    (Double_set_laws.config ~name:"pp2set(of_symmetric double)"
       ~gen_state:gen_double_state ~gen_a:Helpers.small_int ~gen_b:gen_even
       ~eq_a:Int.equal ~eq_b:Int.equal ())

(* Lemma 3a, functor level: extensional equality of all four operations
   of pp2set(set2pp(t)) with t, on sampled states. *)
let lemma3_functor_tests =
  [
    QCheck.Test.make ~count:500
      ~name:"Lemma 3: pp2set(set2pp(t)) = t on all operations (of_lens)"
      (QCheck.triple Fixtures.gen_person Fixtures.gen_person
         Helpers.short_string)
      (fun (s, a, b) ->
        let eq_unit_run x y =
          Name_set.equal_result Esm_laws.Equality.unit x y
        in
        Name_set.equal_result Fixtures.equal_person
          (Name_rt.run Name_rt.get_a s)
          (Name_set.run Name_set.get_a s)
        && Name_set.equal_result String.equal
             (Name_rt.run Name_rt.get_b s)
             (Name_set.run Name_set.get_b s)
        && eq_unit_run
             (Name_rt.run (Name_rt.set_a a) s)
             (Name_set.run (Name_set.set_a a) s)
        && eq_unit_run
             (Name_rt.run (Name_rt.set_b b) s)
             (Name_set.run (Name_set.set_b b) s));
    QCheck.Test.make ~count:500
      ~name:"Lemma 3: set2pp(pp2set(u)) = u on all operations (of_symmetric)"
      (QCheck.triple gen_double_state Helpers.small_int gen_even)
      (fun (s, a, b) ->
        Double_put.equal_result Int.equal
          (Double_rt.run (Double_rt.put_ab a) s)
          (Double_put.run (Double_put.put_ab a) s)
        && Double_put.equal_result Int.equal
             (Double_rt.run (Double_rt.put_ba b) s)
             (Double_put.run (Double_put.put_ba b) s)
        && Double_put.equal_result Int.equal
             (Double_rt.run Double_rt.get_a s)
             (Double_put.run Double_put.get_a s)
        && Double_put.equal_result Int.equal
             (Double_rt.run Double_rt.get_b s)
             (Double_put.run Double_put.get_b s));
  ]

(* Lemma 3b, record level: observational equivalence over random
   programs. *)
let name_packed init =
  Concrete.pack ~bx:(Concrete.of_lens Fixtures.name_lens) ~init
    ~eq_state:Fixtures.equal_person

let name_roundtrip_packed init =
  Concrete.pack
    ~bx:
      (Concrete.put_to_set (Concrete.set_to_put (Concrete.of_lens Fixtures.name_lens)))
    ~init ~eq_state:Fixtures.equal_person

let p0 = Fixtures.{ name = "ada"; age = 36; email = "ada@x" }

let lemma3_record_tests =
  [
    Equivalence.test ~count:500
      ~name:"Lemma 3 (record level): pp2set . set2pp = id observationally"
      ~eq_a:Fixtures.equal_person ~eq_b:String.equal
      ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string (name_packed p0)
      (name_roundtrip_packed p0);
  ]

(* Lemma 1 at the effectful level: set2pp of the Section-4 instance is a
   lawful put-bx INCLUDING traces. *)
module Eff_put = Translate.Set_to_put_stateful (Effectful.Paper_example)
module Eff_put_laws = Bx_laws.Put_bx (Eff_put)

let effectful_lemma1_tests =
  Eff_put_laws.well_behaved
    (Eff_put_laws.config ~name:"set2pp(effectful)"
       ~gen_state:Helpers.small_int ~gen_a:Helpers.small_int
       ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ())

(* Lemma 1's overwriteable clause is tight: a NON-overwriteable set-bx
   yields a put-bx failing (PP). *)
module Counted_set = Of_lens.Make (struct
  type s = Fixtures.counted
  type v = int

  let lens = Fixtures.counted_lens
  let equal_s = Fixtures.equal_counted
end)

module Counted_put = Translate.Set_to_put_stateful (Counted_set)
module Counted_put_laws = Bx_laws.Put_bx (Counted_put)

let counted_cfg =
  Counted_put_laws.config ~name:"set2pp(counted)"
    ~gen_state:Fixtures.gen_counted ~gen_a:Fixtures.gen_counted
    ~gen_b:Helpers.small_int ~eq_a:Fixtures.equal_counted ~eq_b:Int.equal ()

let lemma1_tightness_tests =
  Counted_put_laws.well_behaved counted_cfg

let lemma1_negative_tests =
  [
    Helpers.expect_law_failure
      "set2pp of a non-overwriteable set-bx fails (PP)"
      (Counted_put_laws.pp_b counted_cfg);
  ]

(* The derived put really performs set-then-get. *)
let unit_tests =
  let open Alcotest in
  [
    test_case "set2pp: put_ab returns the updated opposite view" `Quick
      (fun () ->
        let b, (a', b') = Parity_put.run (Parity_put.put_ab 7) (2, 4) in
        check int "returned view" 5 b;
        check int "state a" 7 a';
        check int "state b" 5 b');
    test_case "pp2set: set discards the returned view" `Quick (fun () ->
        let (), (a, b, _) =
          Double_set.run (Double_set.set_a 10)
            (let b0, c0 = Double_instance.put_r 1 Double_instance.init in
             (1, b0, c0))
        in
        check int "a" 10 a;
        check int "b propagated" 20 b);
  ]

let suite =
  unit_tests
  @ Helpers.q
      (lemma1_tests @ effectful_lemma1_tests @ lemma1_tightness_tests
     @ lemma2_tests @ lemma3_functor_tests @ lemma3_record_tests)
  @ lemma1_negative_tests
