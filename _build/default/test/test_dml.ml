(** DML statements and their translation through updatable views: direct
    execution semantics, and the view-update correctness property — a
    view-compatible statement run through the view coincides with running
    it on the store directly. *)

open Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let schema = Workload.employees_schema
let eng = Pred.(col "dept" = str "Engineering")

let t0 = Workload.employees ~seed:11 ~size:20

let unit_tests =
  [
    test "insert adds a conforming row" `Quick (fun () ->
        let r =
          Row.of_list
            [ Value.Int 999; Value.Str "zoe"; Value.Str "Ops"; Value.Int 1; Value.Str "z@x" ]
        in
        let t1 = Dml.apply t0 (Dml.Insert r) in
        check Alcotest.int "one more" (Table.cardinality t0 + 1)
          (Table.cardinality t1));
    test "delete removes exactly the matching rows" `Quick (fun () ->
        let t1 = Dml.apply t0 (Dml.Delete eng) in
        check Alcotest.int "none left" 0
          (Table.cardinality (Algebra.select eng t1));
        check Alcotest.int "others untouched"
          (Table.cardinality (Algebra.select Pred.(not_ eng) t0))
          (Table.cardinality t1));
    test "update rewrites matching rows with expressions" `Quick (fun () ->
        let t1 =
          Dml.apply t0
            (Dml.Update (eng, [ ("salary", Pred.int 1) ]))
        in
        check Alcotest.bool "all engineering salaries set" true
          (List.for_all
             (fun r -> Row.get schema r "salary" = Value.Int 1)
             (Table.rows (Algebra.select eng t1))));
    test "update can copy a column through an expression" `Quick (fun () ->
        let t1 =
          Dml.apply t0
            (Dml.Update (Pred.(Const true), [ ("email", Pred.col "name") ]))
        in
        check Alcotest.bool "email mirrors name" true
          (List.for_all
             (fun r ->
               Value.equal (Row.get schema r "email") (Row.get schema r "name"))
             (Table.rows t1)));
    test "apply_all runs in order" `Quick (fun () ->
        let t1 =
          Dml.apply_all t0
            [
              Dml.Update (Pred.(Const true), [ ("dept", Pred.str "One") ]);
              Dml.Delete Pred.(col "dept" = str "One");
            ]
        in
        check Alcotest.int "everything deleted" 0 (Table.cardinality t1));
  ]

(* View-update correctness for select views. *)

let select_lens = Rlens.select eng

let gen_store =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Workload.employees ~seed ~size))

(* Statements that stay within the select view's domain (they only
   touch engineering rows, and inserted rows satisfy the predicate). *)
let gen_view_stmt : Dml.t QCheck.arbitrary =
  QCheck.oneof
    [
      QCheck.map
        (fun (i, n) ->
          Dml.Insert
            (Row.of_list
               [
                 Value.Int (1000 + i); Value.Str n; Value.Str "Engineering";
                 Value.Int 1000; Value.Str (n ^ "@x");
               ]))
        (QCheck.pair QCheck.small_nat QCheck.small_string);
      QCheck.map
        (fun i -> Dml.Delete Pred.(col "id" = int i))
        QCheck.small_nat;
      QCheck.map
        (fun i ->
          Dml.Update
            (Pred.(col "id" = int i), [ ("salary", Pred.int 42_000) ]))
        QCheck.small_nat;
    ]

let prop_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"select view: DML through the view = DML on the store"
      (QCheck.pair gen_store gen_view_stmt)
      (fun (store, stmt) ->
        (* restrict deletes/updates to view rows: predicates on id only
           touch rows that may or may not be in the view; conjoin the
           view predicate so the direct run matches the view run *)
        let stmt_direct =
          match stmt with
          | Dml.Insert r -> Dml.Insert r
          | Dml.Delete p -> Dml.Delete Pred.(p && eng)
          | Dml.Update (p, a) -> Dml.Update (Pred.(p && eng), a)
        in
        Table.equal
          (Dml.through select_lens stmt store)
          (Dml.apply store stmt_direct));
    QCheck.Test.make ~count:300
      ~name:"project view: updates through the view preserve hidden columns"
      (QCheck.pair gen_store QCheck.small_nat)
      (fun (store, i) ->
        let lens =
          Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ] schema
        in
        let stmt =
          Dml.Update (Pred.(col "id" = int i), [ ("name", Pred.str "renamed") ])
        in
        let store' = Dml.through lens stmt store in
        (* salaries never change through a name-only view edit *)
        Table.equal
          (Algebra.project [ "id"; "salary" ] store')
          (Algebra.project [ "id"; "salary" ] store));
  ]

let suite = unit_tests @ Helpers.q prop_tests
