(** Tests for symmetric lenses: unit behaviour of each construction, the
    (PutRL)/(PutLR) laws on reachable complements, law preservation by
    composition and tensor, and negative detection of a broken lens. *)

open Esm_symlens

let check = Alcotest.check
let test = Alcotest.test_case

let gen_even : int QCheck.arbitrary =
  QCheck.map (fun x -> 2 * x) Helpers.small_int

let unit_tests =
  [
    test "id propagates unchanged" `Quick (fun () ->
        let sync = Symlens.start (Symlens.id ()) in
        let b, sync = sync.Symlens.push_r 5 in
        check Alcotest.int "right" 5 b;
        let a, _ = sync.Symlens.push_l 9 in
        check Alcotest.int "left" 9 a);
    test "of_iso applies the bijection" `Quick (fun () ->
        let sync = Symlens.start Fixtures.double_iso in
        let b, sync = sync.Symlens.push_r 21 in
        check Alcotest.int "doubled" 42 b;
        let a, _ = sync.Symlens.push_l 10 in
        check Alcotest.int "halved" 5 a);
    test "of_lens: view edits preserve hidden source fields" `Quick
      (fun () ->
        let sync = Symlens.start Fixtures.name_symlens in
        let p0 = Fixtures.{ name = "ada"; age = 36; email = "ada@x" } in
        let name, sync = sync.Symlens.push_r p0 in
        check Alcotest.string "projected" "ada" name;
        let p1, _ = sync.Symlens.push_l "lovelace" in
        check Alcotest.int "age kept" 36 p1.Fixtures.age;
        check Alcotest.string "email kept" "ada@x" p1.Fixtures.email;
        check Alcotest.string "name updated" "lovelace" p1.Fixtures.name);
    test "of_lens: create is used before any source is seen" `Quick
      (fun () ->
        let sync = Symlens.start Fixtures.name_symlens in
        let p, _ = sync.Symlens.push_l "fresh" in
        check Alcotest.string "name" "fresh" p.Fixtures.name;
        check Alcotest.int "default age" 0 p.Fixtures.age);
    test "term forgets and restores" `Quick (fun () ->
        let sync = Symlens.start (Symlens.term ~default:0 ~eq:Int.equal) in
        let (), sync = sync.Symlens.push_r 42 in
        let a, _ = sync.Symlens.push_l () in
        check Alcotest.int "restored" 42 a);
    test "disconnect does not propagate" `Quick (fun () ->
        let lens =
          Symlens.disconnect ~default_a:0 ~default_b:"o" ~eq_a:Int.equal
            ~eq_b:String.equal
        in
        let sync = Symlens.start lens in
        let b, sync = sync.Symlens.push_r 7 in
        check Alcotest.string "b untouched" "o" b;
        let a, _ = sync.Symlens.push_l "new" in
        check Alcotest.int "a untouched" 7 a);
    test "compose threads through the middle" `Quick (fun () ->
        let lens = Symlens.compose Fixtures.double_iso Fixtures.double_iso in
        let sync = Symlens.start lens in
        let b, _ = sync.Symlens.push_r 3 in
        check Alcotest.int "quadrupled" 12 b);
    test "tensor synchronises componentwise" `Quick (fun () ->
        let lens = Symlens.tensor Fixtures.double_iso (Symlens.id ()) in
        let sync = Symlens.start lens in
        let (b1, b2), _ = sync.Symlens.push_r (2, "s") in
        check Alcotest.int "left component" 4 b1;
        check Alcotest.string "right component" "s" b2);
    test "inv swaps the directions" `Quick (fun () ->
        let sync = Symlens.start (Symlens.inv Fixtures.double_iso) in
        let b, _ = sync.Symlens.push_r 10 in
        check Alcotest.int "halved" 5 b);
    test "run collects opposite-side values" `Quick (fun () ->
        let outputs =
          Symlens.run Fixtures.double_iso
            [ Symlens.Push_r 1; Symlens.Push_l 8; Symlens.Push_r 3 ]
        in
        check Alcotest.int "three outputs" 3 (List.length outputs);
        match outputs with
        | [ Symlens.Push_l 2; Symlens.Push_r 4; Symlens.Push_l 6 ] -> ()
        | _ -> Alcotest.fail "unexpected outputs");
    test "to_instance/of_instance round trip behaves identically" `Quick
      (fun () ->
        let lens' =
          Symlens.of_instance (Symlens.to_instance Fixtures.double_iso)
        in
        let steps = [ Symlens.Push_r 2; Symlens.Push_l 6; Symlens.Push_r 5 ] in
        let eq =
          Esm_laws.Equality.list
            (Symlens.equal_step ~eq_a:Int.equal ~eq_b:Int.equal)
        in
        check Alcotest.bool "same outputs" true
          (eq
             (Symlens.run Fixtures.double_iso steps)
             (Symlens.run lens' steps)));
  ]

(* ------------------------------------------------------------------ *)
(* Laws                                                                *)
(* ------------------------------------------------------------------ *)

let law_tests =
  List.concat
    [
      Symlens_laws.well_behaved ~name:"id" (Symlens.id ())
        ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
        ~eq_b:Int.equal;
      (* double_iso: B values live in the even integers. *)
      Symlens_laws.well_behaved ~name:"double_iso" Fixtures.double_iso
        ~gen_a:Helpers.small_int ~gen_b:gen_even ~eq_a:Int.equal
        ~eq_b:Int.equal;
      Symlens_laws.well_behaved ~name:"of_lens name" Fixtures.name_symlens
        ~gen_a:Fixtures.gen_person ~gen_b:Helpers.short_string
        ~eq_a:Fixtures.equal_person ~eq_b:String.equal;
      Symlens_laws.well_behaved ~name:"term"
        (Symlens.term ~default:0 ~eq:Int.equal)
        ~gen_a:Helpers.small_int ~gen_b:QCheck.unit ~eq_a:Int.equal
        ~eq_b:Esm_laws.Equality.unit;
      Symlens_laws.well_behaved ~name:"disconnect"
        (Symlens.disconnect ~default_a:0 ~default_b:"" ~eq_a:Int.equal
           ~eq_b:String.equal)
        ~gen_a:Helpers.small_int ~gen_b:Helpers.short_string ~eq_a:Int.equal
        ~eq_b:String.equal;
      Symlens_laws.well_behaved ~name:"compose double;double"
        (Symlens.compose Fixtures.double_iso Fixtures.double_iso)
        ~gen_a:Helpers.small_int
        ~gen_b:(QCheck.map (fun x -> 4 * x) Helpers.small_int)
        ~eq_a:Int.equal ~eq_b:Int.equal;
      Symlens_laws.well_behaved ~name:"compose of_lens;iso"
        (Symlens.compose Fixtures.name_symlens
           (Symlens.of_iso String.uppercase_ascii String.lowercase_ascii))
        ~gen_a:
          (QCheck.map
             (fun p -> Fixtures.{ p with name = String.lowercase_ascii p.name })
             Fixtures.gen_person)
        ~gen_b:(QCheck.map String.uppercase_ascii Helpers.short_string)
        ~eq_a:Fixtures.equal_person ~eq_b:String.equal;
      Symlens_laws.well_behaved ~name:"tensor"
        (Symlens.tensor Fixtures.double_iso (Symlens.id ()))
        ~gen_a:(QCheck.pair Helpers.small_int Helpers.short_string)
        ~gen_b:(QCheck.pair gen_even Helpers.short_string)
        ~eq_a:Esm_laws.Equality.(pair int string)
        ~eq_b:Esm_laws.Equality.(pair int string);
      Symlens_laws.well_behaved ~name:"inv double_iso"
        (Symlens.inv Fixtures.double_iso) ~gen_a:gen_even
        ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal;
    ]

let extension_law_tests =
  List.concat
    [
      (* list_map: lists of persons synchronised with lists of names. *)
      Symlens_laws.well_behaved ~name:"list_map of_lens"
        (Symlens.list_map Fixtures.name_symlens)
        ~gen_a:(QCheck.small_list Fixtures.gen_person)
        ~gen_b:(QCheck.small_list Helpers.short_string)
        ~eq_a:(Esm_laws.Equality.list Fixtures.equal_person)
        ~eq_b:(Esm_laws.Equality.list String.equal);
      (* sum: Either-tagged synchronisation. *)
      Symlens_laws.well_behaved ~name:"sum double (+) id"
        (Symlens.sum Fixtures.double_iso (Symlens.id ()))
        ~gen_a:
          (QCheck.oneof
             [
               QCheck.map Either.left Helpers.small_int;
               QCheck.map Either.right Helpers.short_string;
             ])
        ~gen_b:
          (QCheck.oneof
             [
               QCheck.map Either.left gen_even;
               QCheck.map Either.right Helpers.short_string;
             ])
        ~eq_a:(fun x y -> x = y)
        ~eq_b:(fun x y -> x = y);
    ]

let extension_unit_tests =
  [
    test "list_map synchronises elementwise and resizes" `Quick (fun () ->
        let sync = Symlens.start (Symlens.list_map Fixtures.double_iso) in
        let bs, sync = sync.Symlens.push_r [ 1; 2; 3 ] in
        check Alcotest.(list int) "doubled" [ 2; 4; 6 ] bs;
        let as_, _ = sync.Symlens.push_l [ 10; 20 ] in
        check Alcotest.(list int) "halved, truncated" [ 5; 10 ] as_);
    test "sum switches lens by constructor" `Quick (fun () ->
        let lens = Symlens.sum Fixtures.double_iso (Symlens.id ()) in
        let sync = Symlens.start lens in
        let b, sync = sync.Symlens.push_r (Either.Left 4) in
        check Alcotest.bool "left doubled" true (b = Either.Left 8);
        let b', _ = sync.Symlens.push_r (Either.Right "s") in
        check Alcotest.bool "right id" true (b' = Either.Right "s"));
  ]

(* HPW quotient: the equivalence that makes composition associative and
   id a unit — checked observationally on sampled step sequences. *)
let equivalence_tests =
  [
    Symlens_laws.equivalence ~name:"quotient: id ; l == l"
      (Symlens.compose (Symlens.id ()) Fixtures.double_iso)
      Fixtures.double_iso ~gen_a:Helpers.small_int ~gen_b:gen_even
      ~eq_a:Int.equal ~eq_b:Int.equal;
    Symlens_laws.equivalence ~name:"quotient: l ; id == l"
      (Symlens.compose Fixtures.double_iso (Symlens.id ()))
      Fixtures.double_iso ~gen_a:Helpers.small_int ~gen_b:gen_even
      ~eq_a:Int.equal ~eq_b:Int.equal;
    Symlens_laws.equivalence ~name:"quotient: composition associates"
      (Symlens.compose
         (Symlens.compose Fixtures.double_iso Fixtures.double_iso)
         Fixtures.double_iso)
      (Symlens.compose Fixtures.double_iso
         (Symlens.compose Fixtures.double_iso Fixtures.double_iso))
      ~gen_a:Helpers.small_int
      ~gen_b:(QCheck.map (fun x -> 8 * x) Helpers.small_int)
      ~eq_a:Int.equal ~eq_b:Int.equal;
    Symlens_laws.equivalence ~name:"quotient: inv is an involution"
      (Symlens.inv (Symlens.inv Fixtures.name_symlens))
      Fixtures.name_symlens ~gen_a:Fixtures.gen_person
      ~gen_b:Helpers.short_string ~eq_a:Fixtures.equal_person
      ~eq_b:String.equal;
  ]

let quotient_negative_tests =
  [
    Helpers.expect_law_failure
      "quotient distinguishes genuinely different lenses"
      (Symlens_laws.equivalence ~name:"(expected failure)"
         Fixtures.double_iso (Symlens.id ()) ~gen_a:Helpers.small_int
         ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal);
  ]

let negative_tests =
  [
    Helpers.expect_law_failure "broken symlens fails PutLR"
      (Symlens_laws.put_lr ~name:"broken" Fixtures.broken_symlens
         ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_b:Int.equal);
  ]

let suite =
  unit_tests @ extension_unit_tests
  @ Helpers.q (law_tests @ extension_law_tests @ equivalence_tests)
  @ negative_tests @ quotient_negative_tests
