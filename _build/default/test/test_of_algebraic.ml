(** Lemma 5: an algebraic bx (Correct + Hippocratic) yields a set-bx over
    the state of consistent pairs; an undoable bx yields an overwriteable
    set-bx.

    Validated for the undoable and non-undoable parity bx from the
    fixtures, plus the identity bx.  Also checks the construction
    preserves the consistency invariant. *)

open Esm_core

module Parity_bx = Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = Fixtures.parity_undoable
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Parity_laws = Bx_laws.Set_bx (Parity_bx)

module Sticky_bx = Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = Fixtures.parity_sticky
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Sticky_laws = Bx_laws.Set_bx (Sticky_bx)

module Id_bx = Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = Esm_algbx.Algbx.identity ~eq:Int.equal
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Id_laws = Bx_laws.Set_bx (Id_bx)

let gen_id_consistent = QCheck.map (fun a -> (a, a)) Helpers.small_int

let law_tests =
  List.concat
    [
      Parity_laws.overwriteable
        (Parity_laws.config ~name:"of_algebraic(parity-undoable)"
           ~gen_state:Fixtures.gen_parity_consistent ~gen_a:Helpers.small_int
           ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ());
      Sticky_laws.well_behaved
        (Sticky_laws.config ~name:"of_algebraic(parity-sticky)"
           ~gen_state:Fixtures.gen_parity_consistent ~gen_a:Helpers.small_int
           ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ());
      Id_laws.overwriteable
        (Id_laws.config ~name:"of_algebraic(identity)"
           ~gen_state:gen_id_consistent ~gen_a:Helpers.small_int
           ~gen_b:Helpers.small_int ~eq_a:Int.equal ~eq_b:Int.equal ());
    ]

let invariant_tests =
  [
    QCheck.Test.make ~count:500
      ~name:"of_algebraic: set_a preserves consistency"
      (QCheck.pair Fixtures.gen_parity_consistent Helpers.small_int)
      (fun (s, a) ->
        Parity_bx.consistent (snd (Parity_bx.run (Parity_bx.set_a a) s)));
    QCheck.Test.make ~count:500
      ~name:"of_algebraic: set_b preserves consistency"
      (QCheck.pair Fixtures.gen_parity_consistent Helpers.small_int)
      (fun (s, b) ->
        Parity_bx.consistent (snd (Parity_bx.run (Parity_bx.set_b b) s)));
    QCheck.Test.make ~count:500 ~name:"of_algebraic: repair is consistent"
      (QCheck.pair Helpers.small_int Helpers.small_int)
      (fun s -> Parity_bx.consistent (Parity_bx.repair s));
  ]

let negative_tests =
  [
    (* Non-undoable bx: (SS) fails on the A side — re-setting A cannot
       undo the damage the first set did to B. *)
    Helpers.expect_law_failure "of_algebraic(parity-sticky) is not overwriteable"
      (Sticky_laws.A_cell.ss
         (Sticky_laws.A_cell.config ~name:"sticky.A"
            ~gen_world:Fixtures.gen_parity_consistent
            ~gen_value:Helpers.small_int ~eq_value:Int.equal ()));
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "set_a repairs the B side" `Quick (fun () ->
        (* state (2, 4); set_a 7 must flip b's parity: fwd 7 4 = 5. *)
        let (), (a, b) = Parity_bx.run (Parity_bx.set_a 7) (2, 4) in
        check int "a installed" 7 a;
        check int "b repaired" 5 b);
    test_case "set_b repairs the A side" `Quick (fun () ->
        let (), (a, b) = Parity_bx.run (Parity_bx.set_b 9) (2, 4) in
        check int "b installed" 9 b;
        check int "a repaired" 3 a);
    test_case "hippocratic: consistent set changes nothing else" `Quick
      (fun () ->
        let (), (a, b) = Parity_bx.run (Parity_bx.set_a 4) (2, 4) in
        check int "a installed" 4 a;
        check int "b untouched" 4 b);
  ]

let suite = unit_tests @ Helpers.q (law_tests @ invariant_tests) @ negative_tests
