(** Section 4: the effectful set-bx.  The paper's literal example
    (integer state, "Changed A"/"Changed B" prints) plus the generalised
    change-logging wrapper over a lens-induced bx.

    The key subtlety the paper relies on: "the side-effects only occur
    when the state is changed" — this is what keeps the set-bx laws valid
    in the presence of I/O.  We verify the laws {e including traces}, the
    exact trace content, and the failure of (SS) at the trace level. *)

open Esm_core
module E = Effectful.Paper_example
module E_laws = Bx_laws.Set_bx (E)

(* The generalised wrapper over the name lens. *)
module Logged_name = Effectful.Make (struct
  type ta = Fixtures.person
  type tb = string
  type ts = Fixtures.person

  let bx = Concrete.of_lens Fixtures.name_lens
  let equal_a = Fixtures.equal_person
  let equal_b = String.equal
  let equal_s = Fixtures.equal_person
  let message_a = "Changed person"
  let message_b = "Changed name"
end)

module Logged_laws = Bx_laws.Set_bx (Logged_name)

let law_tests =
  List.concat
    [
      E_laws.well_behaved
        (E_laws.config ~name:"effectful(paper)" ~gen_state:Helpers.small_int
           ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
           ~eq_b:Int.equal ());
      Logged_laws.well_behaved
        (Logged_laws.config ~name:"effectful(name lens)"
           ~gen_state:Fixtures.gen_person ~gen_a:Fixtures.gen_person
           ~gen_b:Helpers.short_string ~eq_a:Fixtures.equal_person
           ~eq_b:String.equal ());
    ]

let negative_tests =
  [
    (* (SS) fails at the trace level: changing twice prints twice. *)
    Helpers.expect_law_failure "effectful bx is not overwriteable (traces)"
      (E_laws.A_cell.ss
         (E_laws.A_cell.config ~name:"effectful.A"
            ~gen_world:Helpers.small_int ~gen_value:Helpers.small_int
            ~eq_value:Int.equal ()));
  ]

let trace = Alcotest.(list string)

let unit_tests =
  let open Alcotest in
  let open E.Infix in
  [
    test_case "setting a different value prints" `Quick (fun () ->
        check trace "one message" [ "Changed A" ] (E.trace (E.set_a 1) 0));
    test_case "setting the current value is silent" `Quick (fun () ->
        check trace "silent" [] (E.trace (E.set_a 5) 5));
    test_case "the B side has its own message" `Quick (fun () ->
        check trace "changed b" [ "Changed B" ] (E.trace (E.set_b 9) 0));
    test_case "messages accumulate in program order" `Quick (fun () ->
        check trace "both"
          [ "Changed A"; "Changed B"; "Changed A" ]
          (E.trace (E.set_a 1 >> E.set_b 2 >> E.set_a 3) 0));
    test_case "get never prints" `Quick (fun () ->
        check trace "silent" []
          (E.trace (E.bind E.get_a (fun _ -> E.get_b)) 7));
    test_case "paper example: both views are the shared state" `Quick
      (fun () ->
        let ((a, b), _state), _trace = E.run (E.product E.get_a E.get_b) 42 in
        check int "a" 42 a;
        check int "b" 42 b);
    test_case "wrapper: view change logs, no-op set is silent" `Quick
      (fun () ->
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        check trace "change" [ "Changed name" ]
          (Logged_name.trace (Logged_name.set_b "grace") p);
        check trace "no-op" []
          (Logged_name.trace (Logged_name.set_b "ada") p));
    test_case "wrapper: set_b updates the underlying source" `Quick
      (fun () ->
        let p = Fixtures.{ name = "ada"; age = 1; email = "e" } in
        let ((), p'), _ = Logged_name.run (Logged_name.set_b "grace") p in
        check string "propagated" "grace" p'.Fixtures.name);
    test_case "GS at trace level: get-then-set is completely silent" `Quick
      (fun () ->
        check trace "silent" [] (E.trace (E.bind E.get_a E.set_a) 13));
  ]

let suite = unit_tests @ Helpers.q law_tests @ negative_tests
