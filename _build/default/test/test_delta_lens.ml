(** Delta lenses: action-monoid laws, the three functoriality laws
    (DPutId / DPutGet / DPutComp) for the absolute-delta embedding and
    the positional list-edit lens, and agreement between the delta and
    state-based worlds. *)

open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

(* --- list edits ----------------------------------------------------- *)

module Int_edits = Delta_lens.List_edits (struct
  type t = int

  let equal = Int.equal
end)

let gen_edit : Int_edits.edit QCheck.arbitrary =
  QCheck.oneof
    [
      QCheck.map
        (fun (i, x) -> Int_edits.Insert (i mod 6, x))
        (QCheck.pair QCheck.small_nat Helpers.small_int);
      QCheck.map (fun i -> Int_edits.Delete (i mod 6)) QCheck.small_nat;
      QCheck.map
        (fun (i, x) -> Int_edits.Replace (i mod 6, x))
        (QCheck.pair QCheck.small_nat Helpers.small_int);
    ]

let gen_delta = QCheck.small_list gen_edit
let gen_list = QCheck.small_list Helpers.small_int
let eq_int_list = Esm_laws.Equality.(list int)

let action_tests =
  [
    QCheck.Test.make ~count:300 ~name:"list edits: id acts trivially"
      gen_list
      (fun xs -> eq_int_list (Int_edits.apply xs Int_edits.id) xs);
    QCheck.Test.make ~count:300
      ~name:"list edits: compose = sequential application"
      (QCheck.triple gen_list gen_delta gen_delta)
      (fun (xs, d1, d2) ->
        eq_int_list
          (Int_edits.apply xs (Int_edits.compose d1 d2))
          (Int_edits.apply (Int_edits.apply xs d1) d2));
  ]

let edit_unit_tests =
  [
    test "insert clamps out-of-range positions" `Quick (fun () ->
        check Alcotest.(list int) "append" [ 1; 2; 9 ]
          (Int_edits.apply_edit [ 1; 2 ] (Int_edits.Insert (99, 9)));
        check Alcotest.(list int) "prepend" [ 9; 1; 2 ]
          (Int_edits.apply_edit [ 1; 2 ] (Int_edits.Insert (0, 9))));
    test "delete out of range is a no-op" `Quick (fun () ->
        check Alcotest.(list int) "same" [ 1; 2 ]
          (Int_edits.apply_edit [ 1; 2 ] (Int_edits.Delete 5)));
    test "replace hits exactly one position" `Quick (fun () ->
        check Alcotest.(list int) "mid" [ 1; 9; 3 ]
          (Int_edits.apply_edit [ 1; 2; 3 ] (Int_edits.Replace (1, 9))));
  ]

(* --- absolute embedding of a state-based lens ----------------------- *)

module Abs_name = Delta_lens.Of_lens (struct
  type s = Fixtures.person
  type v = string

  let lens = Fixtures.name_lens
  let equal_s = Fixtures.equal_person
  let equal_v = String.equal
end)

let gen_vdelta : string option QCheck.arbitrary =
  QCheck.option Helpers.short_string

let absolute_law_tests =
  [
    QCheck.Test.make ~count:300 ~name:"absolute: (DPutId)"
      Fixtures.gen_person
      (fun s -> Abs_name.Src.equal_delta (Abs_name.dput s Abs_name.View.id) Abs_name.Src.id);
    QCheck.Test.make ~count:300 ~name:"absolute: (DPutGet)"
      (QCheck.pair Fixtures.gen_person gen_vdelta)
      (fun (s, dv) ->
        Abs_name.View.equal_state
          (Abs_name.View.apply (Abs_name.get s) dv)
          (Abs_name.get (Abs_name.Src.apply s (Abs_name.dput s dv))));
    QCheck.Test.make ~count:300 ~name:"absolute: (DPutComp)"
      (QCheck.triple Fixtures.gen_person gen_vdelta gen_vdelta)
      (fun (s, dv, dv') ->
        let ds = Abs_name.dput s dv in
        let s_mid = Abs_name.Src.apply s ds in
        Abs_name.Src.equal_delta
          (Abs_name.dput s (Abs_name.View.compose dv dv'))
          (Abs_name.Src.compose ds (Abs_name.dput s_mid dv')));
  ]

(* --- to_lens: forgetting deltas recovers the state-based lens ------- *)

let forget_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"to_lens(Of_lens l) behaves exactly like l"
      (QCheck.pair Fixtures.gen_person Helpers.short_string)
      (fun (s, v) ->
        let l' =
          Delta_lens.to_lens
            (module Abs_name : Delta_lens.S
              with type Src.state = Fixtures.person
               and type Src.delta = Fixtures.person option
               and type View.state = string
               and type View.delta = string option)
        in
        Fixtures.equal_person
          (Lens.put l' s v)
          (Lens.put Fixtures.name_lens s v)
        && String.equal (Lens.get l' s) (Lens.get Fixtures.name_lens s));
  ]

(* --- positional list_map delta lens --------------------------------- *)

module Dl_list = Delta_lens.List_map (struct
  type s = int * string
  type v = int

  let lens = Lens.fst_lens
  let create v = (v, "fresh")
  let equal_s = Esm_laws.Equality.(pair int string)
  let equal_v = Int.equal
end)

let gen_sources = QCheck.small_list Helpers.pair_int_string

let gen_vedit : Dl_list.View.edit QCheck.arbitrary =
  QCheck.oneof
    [
      QCheck.map
        (fun (i, x) -> Dl_list.View.Insert (i mod 6, x))
        (QCheck.pair QCheck.small_nat Helpers.small_int);
      QCheck.map (fun i -> Dl_list.View.Delete (i mod 6)) QCheck.small_nat;
      QCheck.map
        (fun (i, x) -> Dl_list.View.Replace (i mod 6, x))
        (QCheck.pair QCheck.small_nat Helpers.small_int);
    ]

let gen_vdelta_list = QCheck.small_list gen_vedit

let list_map_law_tests =
  [
    QCheck.Test.make ~count:300 ~name:"list_map delta: (DPutId)"
      gen_sources
      (fun xs ->
        Dl_list.Src.equal_delta (Dl_list.dput xs Dl_list.View.id)
          Dl_list.Src.id);
    QCheck.Test.make ~count:500 ~name:"list_map delta: (DPutGet)"
      (QCheck.pair gen_sources gen_vdelta_list)
      (fun (xs, dv) ->
        Dl_list.View.equal_state
          (Dl_list.View.apply (Dl_list.get xs) dv)
          (Dl_list.get (Dl_list.Src.apply xs (Dl_list.dput xs dv))));
    QCheck.Test.make ~count:500 ~name:"list_map delta: (DPutComp)"
      (QCheck.triple gen_sources gen_vdelta_list gen_vdelta_list)
      (fun (xs, dv, dv') ->
        let ds = Dl_list.dput xs dv in
        let xs_mid = Dl_list.Src.apply xs ds in
        Dl_list.Src.equal_delta
          (Dl_list.dput xs (Dl_list.View.compose dv dv'))
          (Dl_list.Src.compose ds (Dl_list.dput xs_mid dv')));
  ]

(* Alignment: the whole point of delta lenses.  A view permutation-ish
   edit (delete head) translates to deleting the matching SOURCE element,
   something the state-based list_map lens cannot know. *)
let alignment_tests =
  [
    test "deltas preserve alignment where states cannot" `Quick (fun () ->
        let sources = [ (1, "one"); (2, "two"); (3, "three") ] in
        (* view edit: delete the FIRST element *)
        let ds = Dl_list.dput sources [ Dl_list.View.Delete 0 ] in
        let sources' = Dl_list.Src.apply sources ds in
        check
          Alcotest.(list (pair int string))
          "annotations follow their elements"
          [ (2, "two"); (3, "three") ]
          sources';
        (* the state-based lens on the same update re-aligns by position
           and mangles the annotations *)
        let state_lens =
          Lens.list_map ~create:(fun v -> (v, "fresh")) Lens.fst_lens
        in
        check
          Alcotest.(list (pair int string))
          "state-based put loses alignment"
          [ (2, "one"); (3, "two") ]
          (Lens.put state_lens sources [ 2; 3 ]));
  ]

let suite =
  edit_unit_tests @ alignment_tests
  @ Helpers.q
      (action_tests @ absolute_law_tests @ forget_tests @ list_map_law_tests)
