(** Tests for the monad substrate: unit behaviour of every monad, the
    three monad laws (property-based), the four state-cell laws for the
    state monad and transformer stacks, and the free-monad/state-theory
    normal-form results. *)

open Esm_monad

let check = Alcotest.check
let test = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Identity, Option, Result, List: unit behaviour                      *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    test "identity: bind chains" `Quick (fun () ->
        check Alcotest.int "run" 7
          (Identity.run Identity.(bind (return 3) (fun x -> return (x + 4)))));
    test "option: bind short-circuits" `Quick (fun () ->
        check
          Alcotest.(option int)
          "none" None
          (Option_monad.bind Option_monad.fail (fun x ->
               Option_monad.return (x + 1))));
    test "option: plus is left-biased" `Quick (fun () ->
        check
          Alcotest.(option int)
          "left" (Some 1)
          (Option_monad.plus (Some 1) (Some 2)));
    test "result: catch recovers" `Quick (fun () ->
        let module R = Result_monad.String_error in
        check Alcotest.int "recovered" 42
          (R.run
             (R.catch (R.fail "boom") (fun _ -> R.return 42))
             ~ok:Fun.id
             ~error:(fun _ -> -1)));
    test "list: bind is concat_map" `Quick (fun () ->
        check
          Alcotest.(list int)
          "pairs" [ 10; 11; 20; 21 ]
          (List_monad.bind [ 10; 20 ] (fun x -> [ x; x + 1 ])));
    test "list: choices builds the n-ary product" `Quick (fun () ->
        check Alcotest.int "count" 6
          (List.length (List_monad.choices [ [ 1; 2 ]; [ 3; 4; 5 ] ])));
    test "reader: local rescopes the environment" `Quick (fun () ->
        let module R = Reader.Make (struct
          type t = int
        end) in
        check Alcotest.int "doubled" 12
          (R.run (R.local (fun e -> e * 2) R.ask) 6));
    test "writer: tell accumulates in order" `Quick (fun () ->
        let open Writer.Trace in
        let _, log =
          run (bind (tell [ "a" ]) (fun () -> tell [ "b" ]))
        in
        check Alcotest.(list string) "log" [ "a"; "b" ] log);
  ]

(* ------------------------------------------------------------------ *)
(* Derived combinators from Extend                                     *)
(* ------------------------------------------------------------------ *)

let derived_tests =
  [
    test "map_m collects left-to-right effects" `Quick (fun () ->
        let open Writer.Trace in
        let step x = bind (tell [ string_of_int x ]) (fun () -> return (x * x)) in
        let squares, log = run (map_m step [ 1; 2; 3 ]) in
        check Alcotest.(list int) "values" [ 1; 4; 9 ] squares;
        check Alcotest.(list string) "order" [ "1"; "2"; "3" ] log);
    test "fold_m threads the accumulator" `Quick (fun () ->
        check
          Alcotest.(option int)
          "sum" (Some 10)
          (Option_monad.fold_m (fun acc x -> Some (acc + x)) 0 [ 1; 2; 3; 4 ]));
    test "replicate_m repeats the effect" `Quick (fun () ->
        let module S = State.Make (struct
          type t = int
        end) in
        let bump = S.bind S.get (fun n -> S.bind (S.set (n + 1)) (fun () -> S.return n)) in
        let xs, final = S.run (S.replicate_m 4 bump) 0 in
        check Alcotest.(list int) "values" [ 0; 1; 2; 3 ] xs;
        check Alcotest.int "state" 4 final);
    test "when_m gates the effect" `Quick (fun () ->
        let _, log = Io_sim.run (Io_sim.when_m false (Io_sim.print "no")) in
        check Alcotest.(list string) "silent" [] log);
    test "sequence_unit runs all" `Quick (fun () ->
        let _, log =
          Io_sim.run
            (Io_sim.sequence_unit [ Io_sim.print "x"; Io_sim.print "y" ])
        in
        check Alcotest.(list string) "both" [ "x"; "y" ] log);
  ]

(* ------------------------------------------------------------------ *)
(* Monad laws, property-based                                          *)
(* ------------------------------------------------------------------ *)

(* Option *)
module Option_runnable = struct
  type 'a t = 'a option
  type world = unit
  type 'a result = 'a option

  let return = Option_monad.return
  let bind = Option_monad.bind
  let run ma () = ma
  let equal_result eq = Esm_laws.Equality.option eq
end

module Option_laws = Esm_laws.Monad_laws.Make (Option_runnable)

(* List *)
module List_runnable = struct
  type 'a t = 'a list
  type world = unit
  type 'a result = 'a list

  let return = List_monad.return
  let bind = List_monad.bind
  let run ma () = ma
  let equal_result eq = Esm_laws.Equality.list eq
end

module List_laws = Esm_laws.Monad_laws.Make (List_runnable)

(* State on int *)
module Int_state = State.Make (struct
  type t = int
end)

module State_runnable = struct
  type 'a t = 'a Int_state.t
  type world = int
  type 'a result = 'a * int

  let return = Int_state.return
  let bind = Int_state.bind
  let run = Int_state.run
  let equal_result eq (a1, s1) (a2, s2) = eq a1 a2 && Int.equal s1 s2
end

module State_laws = Esm_laws.Monad_laws.Make (State_runnable)

(* Io_sim *)
module Io_runnable = struct
  type 'a t = 'a Io_sim.t
  type world = unit
  type 'a result = 'a * string list

  let return = Io_sim.return
  let bind = Io_sim.bind
  let run ma () = Io_sim.run ma
  let equal_result eq (a1, t1) (a2, t2) =
    eq a1 a2 && Esm_laws.Equality.(list string) t1 t2
end

module Io_laws = Esm_laws.Monad_laws.Make (Io_runnable)

let gen_unit_world = QCheck.unit

let gen_state_comp : int Int_state.t QCheck.arbitrary =
  QCheck.map
    (fun (k, mode) ->
      match mode mod 3 with
      | 0 -> Int_state.return k
      | 1 -> Int_state.bind Int_state.get (fun s -> Int_state.return (s + k))
      | _ ->
          Int_state.bind (Int_state.set k) (fun () ->
              Int_state.bind Int_state.get (fun s -> Int_state.return (s * 2)))
    )
    (QCheck.pair QCheck.small_signed_int QCheck.small_nat)

let gen_io_comp : int Io_sim.t QCheck.arbitrary =
  QCheck.map
    (fun (k, noisy) ->
      if noisy then
        Io_sim.bind (Io_sim.print (string_of_int k)) (fun () -> Io_sim.return k)
      else Io_sim.return k)
    (QCheck.pair QCheck.small_signed_int QCheck.bool)

let monad_law_tests =
  [
    Option_laws.left_unit ~name:"option" ~gen_a:Helpers.small_int
      ~gen_world:gen_unit_world
      ~f:(fun x -> if x mod 3 = 0 then None else Some (x + 1))
      ~eq_b:Int.equal ();
    Option_laws.right_unit ~name:"option"
      ~gen_ma:(QCheck.option Helpers.small_int) ~gen_world:gen_unit_world
      ~eq_a:Int.equal ();
    Option_laws.assoc ~name:"option" ~gen_ma:(QCheck.option Helpers.small_int)
      ~gen_world:gen_unit_world
      ~f:(fun x -> if x < 0 then None else Some (x * 2))
      ~g:(fun x -> if x > 50 then None else Some (string_of_int x))
      ~eq_c:String.equal ();
    List_laws.left_unit ~name:"list" ~gen_a:Helpers.small_int
      ~gen_world:gen_unit_world
      ~f:(fun x -> [ x; x + 1 ])
      ~eq_b:Int.equal ();
    List_laws.right_unit ~name:"list"
      ~gen_ma:(QCheck.small_list Helpers.small_int) ~gen_world:gen_unit_world
      ~eq_a:Int.equal ();
    List_laws.assoc ~name:"list" ~gen_ma:(QCheck.small_list Helpers.small_int)
      ~gen_world:gen_unit_world
      ~f:(fun x -> [ x; -x ])
      ~g:(fun x -> if x >= 0 then [ x ] else [])
      ~eq_c:Int.equal ();
    State_laws.left_unit ~name:"state" ~gen_a:Helpers.small_int
      ~gen_world:Helpers.small_int
      ~f:(fun x -> Int_state.bind (Int_state.set x) (fun () -> Int_state.return x))
      ~eq_b:Int.equal ();
    State_laws.right_unit ~name:"state" ~gen_ma:gen_state_comp
      ~gen_world:Helpers.small_int ~eq_a:Int.equal ();
    State_laws.assoc ~name:"state" ~gen_ma:gen_state_comp
      ~gen_world:Helpers.small_int
      ~f:(fun x -> Int_state.bind (Int_state.set (x + 1)) (fun () -> Int_state.return x))
      ~g:(fun x -> Int_state.gets (fun s -> s + x))
      ~eq_c:Int.equal ();
    Io_laws.left_unit ~name:"io_sim" ~gen_a:Helpers.small_int
      ~gen_world:gen_unit_world
      ~f:(fun x ->
        Io_sim.bind (Io_sim.print "f") (fun () -> Io_sim.return (x + 1)))
      ~eq_b:Int.equal ();
    Io_laws.right_unit ~name:"io_sim" ~gen_ma:gen_io_comp
      ~gen_world:gen_unit_world ~eq_a:Int.equal ();
    Io_laws.assoc ~name:"io_sim" ~gen_ma:gen_io_comp
      ~gen_world:gen_unit_world
      ~f:(fun x -> Io_sim.bind (Io_sim.print "f") (fun () -> Io_sim.return x))
      ~g:(fun x -> Io_sim.return (x * 2))
      ~eq_c:Int.equal ();
  ]

(* ------------------------------------------------------------------ *)
(* State-cell laws for the state monad itself                          *)
(* ------------------------------------------------------------------ *)

module State_cell = Esm_laws.Cell_laws.Make (struct
  include State_runnable

  type value = int

  let get = Int_state.get
  let set = Int_state.set
end)

let state_cell_tests =
  State_cell.overwriteable
    (State_cell.config ~name:"state-monad" ~gen_world:Helpers.small_int
       ~gen_value:Helpers.small_int ~eq_value:Int.equal ())

(* StateT over Io_sim also forms a lawful cell (no printing involved). *)
module Stio = State_t.Make (struct
  type t = int
end) (Io_sim)

module Stio_cell = Esm_laws.Cell_laws.Make (struct
  type 'a t = 'a Stio.t
  type world = int
  type 'a result = ('a * int) * string list
  type value = int

  let return = Stio.return
  let bind = Stio.bind
  let run ma s = Io_sim.run (ma s)
  let equal_result eq ((a1, s1), t1) ((a2, s2), t2) =
    eq a1 a2 && Int.equal s1 s2 && Esm_laws.Equality.(list string) t1 t2
  let get = Stio.get
  let set = Stio.set
end)

let stio_cell_tests =
  Stio_cell.overwriteable
    (Stio_cell.config ~name:"stateT-io_sim" ~gen_world:Helpers.small_int
       ~gen_value:Helpers.small_int ~eq_value:Int.equal ())

(* ------------------------------------------------------------------ *)
(* Transformers                                                        *)
(* ------------------------------------------------------------------ *)

module Wt = Writer_t.Make (struct
  type t = string list

  let empty = []
  let combine = ( @ )
end) (struct
  type 'a t = 'a option

  let return = Option_monad.return
  let bind = Option_monad.bind
end)

module Ot = Option_t.Make (struct
  type 'a t = 'a Int_state.t

  let return = Int_state.return
  let bind = Int_state.bind
end)

let transformer_tests =
  let test = Alcotest.test_case in
  [
    test "writer_t: output threads through the inner monad" `Quick (fun () ->
        let prog =
          Wt.bind (Wt.tell [ "a" ]) (fun () ->
              Wt.bind (Wt.lift (Some 5)) (fun x ->
                  Wt.bind (Wt.tell [ "b" ]) (fun () -> Wt.return (x * 2))))
        in
        match Wt.run prog with
        | Some (10, [ "a"; "b" ]) -> ()
        | _ -> Alcotest.fail "unexpected");
    test "writer_t: inner failure drops everything" `Quick (fun () ->
        let prog = Wt.bind (Wt.tell [ "a" ]) (fun () -> Wt.lift None) in
        Alcotest.(check bool) "none" true (Wt.run prog = None));
    test "option_t: failure aborts but state survives up to it" `Quick
      (fun () ->
        let prog =
          Ot.bind (Ot.lift (Int_state.set 9)) (fun () ->
              Ot.bind (Ot.fail ()) (fun _ -> Ot.return 1))
        in
        let v, s = Int_state.run (Ot.run prog) 0 in
        Alcotest.(check bool) "failed" true (v = None);
        Alcotest.(check int) "state written before the failure" 9 s);
    test "option_t: plus recovers" `Quick (fun () ->
        let prog = Ot.plus (Ot.fail ()) (Ot.return 7) in
        let v, _ = Int_state.run (Ot.run prog) 0 in
        Alcotest.(check bool) "recovered" true (v = Some 7));
  ]

(* ------------------------------------------------------------------ *)
(* Io_sim behaviour                                                    *)
(* ------------------------------------------------------------------ *)

let io_tests =
  [
    test "print order is preserved" `Quick (fun () ->
        let _, log =
          Io_sim.run
            Io_sim.Infix.(Io_sim.print "1" >> Io_sim.print "2" >> Io_sim.print "3")
        in
        check Alcotest.(list string) "trace" [ "1"; "2"; "3" ] log);
    test "read_line consumes the input queue" `Quick (fun () ->
        let (l1, l2), _ =
          Io_sim.run ~input:[ "a"; "b" ]
            (Io_sim.product Io_sim.read_line Io_sim.read_line)
        in
        check Alcotest.(option string) "first" (Some "a") l1;
        check Alcotest.(option string) "second" (Some "b") l2);
    test "read_line on empty input yields None" `Quick (fun () ->
        check
          Alcotest.(option string)
          "none" None
          (Io_sim.value Io_sim.read_line));
  ]

(* ------------------------------------------------------------------ *)
(* Free monad and the state theory                                     *)
(* ------------------------------------------------------------------ *)

module Theory = State_theory.Make (struct
  type t = int
end)

let sample_states = [ -5; -1; 0; 1; 2; 17; 100 ]

let term_equal ?(eq_a = ( = )) t1 t2 =
  Theory.equal_on ~eq_a ~eq_state:Int.equal sample_states t1 t2

let gen_term : int Theory.Term.t QCheck.arbitrary =
  (* Random programs over get/set/arithmetic. *)
  let open QCheck in
  let open Theory in
  map
    (fun spec ->
      List.fold_left
        (fun acc instr ->
          Term.bind acc (fun x ->
              match instr mod 4 with
              | 0 -> gets (fun s -> s + x)
              | 1 -> Term.bind (set x) (fun () -> Term.return x)
              | 2 -> modify (fun s -> s * 2) |> fun m -> Term.bind m (fun () -> Term.return x)
              | _ -> Term.return (x + 1)))
        (Term.return 1)
        spec)
    (small_list small_nat)

let theory_tests =
  [
    test "get/set satisfy the four laws syntactically-normalised" `Quick
      (fun () ->
        let open Theory in
        (* (GS) *)
        Alcotest.(check bool)
          "GS" true
          (term_equal (Term.bind get set) (Term.return ()));
        (* (SG) *)
        Alcotest.(check bool)
          "SG" true
          (term_equal
             (Term.bind (set 7) (fun () -> get))
             (Term.bind (set 7) (fun () -> Term.return 7)));
        (* (SS) *)
        Alcotest.(check bool)
          "SS" true
          (term_equal
             (Term.bind (set 1) (fun () -> set 2))
             (set 2)));
    test "denote interprets a small program" `Quick (fun () ->
        let open Theory in
        let prog =
          Term.bind get (fun s ->
              Term.bind (set (s * 10)) (fun () -> gets (fun s' -> s' + 1)))
        in
        let a, s = denote prog 4 in
        check Alcotest.int "value" 41 a;
        check Alcotest.int "state" 40 s);
    test "ops_performed counts the executed spine" `Quick (fun () ->
        let open Theory in
        let prog = Term.bind get (fun s -> set (s + 1)) in
        check Alcotest.int "two ops" 2 (ops_performed prog 0));
    test "canonical has exactly two operations" `Quick (fun () ->
        let open Theory in
        let prog =
          Term.bind get (fun _ ->
              Term.bind (set 3) (fun () ->
                  Term.bind get (fun s -> Term.bind (set (s + 1)) (fun () -> get))))
        in
        check Alcotest.int "original is longer" 5 (ops_performed prog 0);
        check Alcotest.int "canonical is get;set" 2
          (ops_performed (canonical prog) 0));
  ]

let theory_prop_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"state theory: every term equals its canonical normal form"
      gen_term
      (fun t -> term_equal ~eq_a:Int.equal t (Theory.canonical t));
    QCheck.Test.make ~count:300
      ~name:"state theory: canonical is idempotent up to equality" gen_term
      (fun t ->
        term_equal ~eq_a:Int.equal (Theory.canonical t)
          (Theory.canonical (Theory.canonical t)));
  ]

(* Free monad interpreted into the list monad: a non-state handler. *)
module Choice_sig = struct
  type 'a t = Choose of 'a * 'a

  let map f (Choose (l, r)) = Choose (f l, f r)
end

module Choice = Free.Make (Choice_sig)

let free_tests =
  [
    test "free monad interprets into list nondeterminism" `Quick (fun () ->
        let module I = Choice.Interpret (struct
          type 'a t = 'a list

          let return = List_monad.return
          let bind = List_monad.bind
        end) in
        let handler =
          { I.handle = (fun (Choice_sig.Choose (l, r)) -> l @ r) }
        in
        let coin = Choice.lift (Choice_sig.Choose (0, 1)) in
        let two_coins =
          Choice.bind coin (fun x ->
              Choice.bind coin (fun y -> Choice.return ((2 * x) + y)))
        in
        check Alcotest.(list int) "all outcomes" [ 0; 1; 2; 3 ]
          (I.run handler two_coins));
  ]

let suite =
  unit_tests @ derived_tests
  @ Helpers.q monad_law_tests
  @ Helpers.q state_cell_tests
  @ Helpers.q stio_cell_tests
  @ transformer_tests @ io_tests @ theory_tests
  @ Helpers.q theory_prop_tests
  @ free_tests
