(** Quotienting entangled state monads by observational equivalence (the
    paper's anticipated analogue of symmetric-lens quotienting): the
    minimized bx is observationally equivalent to the original, redundant
    hidden state collapses, and already-minimal systems stay put. *)

open Esm_core

let values = [ 0; 1; 2; 3 ]

let parity_packed =
  Concrete.pack ~bx:(Concrete.of_algebraic Fixtures.parity_undoable)
    ~init:(0, 0)
    ~eq_state:Esm_laws.Equality.(pair int int)

(* The same parity bx with a junk counter in the hidden state: bumped by
   every effective update, observable by nobody. *)
let junky_bx : (int, int, (int * int) * int) Concrete.set_bx =
  let base = Concrete.of_algebraic Fixtures.parity_undoable in
  {
    Concrete.name = "junky-parity";
    get_a = (fun (s, _) -> base.Concrete.get_a s);
    get_b = (fun (s, _) -> base.Concrete.get_b s);
    set_a = (fun a (s, j) -> (base.Concrete.set_a a s, (j + 1) mod 7));
    set_b = (fun b (s, j) -> (base.Concrete.set_b b s, (j + 3) mod 7));
  }

let junky_packed =
  Concrete.pack ~bx:junky_bx
    ~init:((0, 0), 0)
    ~eq_state:Esm_laws.Equality.(pair (pair int int) int)

let min_parity =
  Minimize.minimize ~values_a:values ~values_b:values ~eq_a:Int.equal
    ~eq_b:Int.equal parity_packed

let min_junky =
  Minimize.minimize ~values_a:values ~values_b:values ~eq_a:Int.equal
    ~eq_b:Int.equal junky_packed

let gen_value = QCheck.oneofl values

let unit_tests =
  let open Alcotest in
  [
    test_case "exploration closes on the finite alphabet" `Quick (fun () ->
        check bool "parity complete" true min_parity.Minimize.complete;
        check bool "junky complete" true min_junky.Minimize.complete);
    test_case "junk state is strictly collapsed" `Quick (fun () ->
        check bool "junky explores more states" true
          (min_junky.Minimize.reachable > min_parity.Minimize.reachable);
        check int "but the quotients coincide in size"
          min_parity.Minimize.classes min_junky.Minimize.classes);
    test_case "parity bx is already minimal" `Quick (fun () ->
        (* every reachable (a, b) pair is observationally distinct *)
        check int "classes = reachable" min_parity.Minimize.reachable
          min_parity.Minimize.classes);
  ]

let equivalence_tests =
  [
    Equivalence.test ~count:400
      ~name:"quotient of parity is observationally equivalent"
      ~eq_a:Int.equal ~eq_b:Int.equal ~gen_a:gen_value ~gen_b:gen_value
      parity_packed min_parity.Minimize.quotient;
    Equivalence.test ~count:400
      ~name:"quotient of junky-parity is observationally equivalent"
      ~eq_a:Int.equal ~eq_b:Int.equal ~gen_a:gen_value ~gen_b:gen_value
      junky_packed min_junky.Minimize.quotient;
    Equivalence.test ~count:400
      ~name:"junky-parity and plain parity share a quotient behaviour"
      ~eq_a:Int.equal ~eq_b:Int.equal ~gen_a:gen_value ~gen_b:gen_value
      min_parity.Minimize.quotient min_junky.Minimize.quotient;
  ]

let suite = unit_tests @ Helpers.q equivalence_tests
