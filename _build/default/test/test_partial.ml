(** Partial (exception-raising) bx (paper §5: "effects such as ...
    exceptions"): the set-bx laws in the failure-aware reading on valid
    states, transactional abort behaviour, and rejection of invalid
    updates. *)

open Esm_core

(* The parity bx, but only values in [0, 100] are admissible. *)
module Guarded = Partial.Make (struct
  type ta = int
  type tb = int
  type ts = int * int

  let bx = Concrete.of_algebraic Fixtures.parity_undoable

  let validate v =
    if v < 0 then Error "negative"
    else if v > 100 then Error "too large"
    else Ok ()

  let validate_a = validate
  let validate_b = validate
  let equal_s = Esm_laws.Equality.(pair int int)
end)

module Guarded_laws = Bx_laws.Set_bx (Guarded)

(* Valid states: consistent pairs within [0, 100]. *)
let gen_valid_state : (int * int) QCheck.arbitrary =
  QCheck.map
    (fun (a, bump) ->
      let a = a mod 99 in
      (a, a + (2 * (bump mod ((100 - a) / 2 + 1)))))
    (QCheck.pair QCheck.small_nat QCheck.small_nat)

let gen_valid_value : int QCheck.arbitrary =
  QCheck.map (fun x -> x mod 101) QCheck.small_nat

let law_tests =
  Guarded_laws.overwriteable
    (Guarded_laws.config ~name:"partial(guarded parity)"
       ~gen_state:gen_valid_state ~gen_a:gen_valid_value
       ~gen_b:gen_valid_value ~eq_a:Int.equal ~eq_b:Int.equal ())

let prop_tests =
  [
    QCheck.Test.make ~count:500 ~name:"partial: valid updates succeed"
      (QCheck.pair gen_valid_state gen_valid_value)
      (fun (s, a) -> Guarded.succeeds (Guarded.set_a a) s);
    QCheck.Test.make ~count:500 ~name:"partial: invalid updates fail"
      (QCheck.pair gen_valid_state Helpers.small_int)
      (fun (s, a) ->
        let a = -1 - abs a in
        not (Guarded.succeeds (Guarded.set_a a) s));
    QCheck.Test.make ~count:500
      ~name:"partial: failure aborts the whole computation (transactional)"
      (QCheck.pair gen_valid_state gen_valid_value)
      (fun (s, a) ->
        let open Guarded.Infix in
        (* a valid write before an invalid one leaves no trace *)
        match Guarded.run (Guarded.set_a a >> Guarded.set_b (-5)) s with
        | Error "negative" -> true
        | Error _ | Ok _ -> false);
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "reads always succeed on valid states" `Quick (fun () ->
        match Guarded.run Guarded.get_a (4, 6) with
        | Ok (4, (4, 6)) -> ()
        | _ -> Alcotest.fail "unexpected");
    test_case "error message survives bind" `Quick (fun () ->
        match Guarded.run (Guarded.bind (Guarded.set_a 200) (fun () -> Guarded.get_b)) (0, 0) with
        | Error "too large" -> ()
        | _ -> Alcotest.fail "expected 'too large'");
    test_case "repair still happens on accepted updates" `Quick (fun () ->
        match Guarded.run (Guarded.set_a 7) (2, 4) with
        | Ok ((), (7, 5)) -> ()
        | _ -> Alcotest.fail "expected repaired state (7, 5)");
  ]

let suite = unit_tests @ Helpers.q (law_tests @ prop_tests)
