(** The pipeline query language: lexer/parser behaviour, evaluation
    against the relational algebra, pretty-print/re-parse round trips,
    and error reporting. *)

open Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let employees = Workload.employees ~seed:7 ~size:40

let depts =
  Table.of_lists
    (Schema.make [ ("dept", Value.Tstr); ("floor", Value.Tint) ])
    [
      [ Value.Str "Engineering"; Value.Int 3 ];
      [ Value.Str "Sales"; Value.Int 1 ];
      [ Value.Str "Support"; Value.Int 2 ];
      [ Value.Str "Finance"; Value.Int 4 ];
      [ Value.Str "Ops"; Value.Int 5 ];
    ]

let env = function
  | "employees" -> employees
  | "depts" -> depts
  | name -> Table.errorf "unknown table %s" name

let unit_tests =
  [
    test "base table lookup" `Quick (fun () ->
        check Helpers.table "same" employees (Query.run env "employees"));
    test "where + select pipeline" `Quick (fun () ->
        let result =
          Query.run env
            "employees | where dept = \"Engineering\" | select id, name"
        in
        check
          Alcotest.(list string)
          "columns" [ "id"; "name" ]
          (Schema.column_names (Table.schema result));
        check Helpers.table "matches the algebra"
          (Algebra.project [ "id"; "name" ]
             (Algebra.select Pred.(col "dept" = str "Engineering") employees))
          result);
    test "predicates: and/or/not, <, <=" `Quick (fun () ->
        let q =
          "employees | where (salary < 70000 and not dept = \"Sales\") or id <= 1"
        in
        check Helpers.table "matches the algebra"
          (Algebra.select
             Pred.(
               (col "salary" < int 70_000 && not_ (col "dept" = str "Sales"))
               || col "id" <= int 1)
             employees)
          (Query.run env q));
    test "rename stage" `Quick (fun () ->
        let result = Query.run env "employees | rename dept as team" in
        check Alcotest.bool "renamed" true
          (Schema.mem (Table.schema result) "team"));
    test "join across tables" `Quick (fun () ->
        let result = Query.run env "employees join depts" in
        check Alcotest.bool "has floor" true
          (Schema.mem (Table.schema result) "floor");
        check Alcotest.int "row count preserved (dept fk total)"
          (Table.cardinality employees)
          (Table.cardinality result));
    test "union / diff with parentheses" `Quick (fun () ->
        let q =
          "(employees | where dept = \"Sales\") union (employees | where not dept = \"Sales\")"
        in
        check Helpers.table "partition reassembles" employees (Query.run env q);
        check Alcotest.int "diff empties" 0
          (Table.cardinality (Query.run env "employees diff employees")));
    test "bases collects referenced tables" `Quick (fun () ->
        check
          Alcotest.(slist string String.compare)
          "both" [ "depts"; "employees" ]
          (Query.bases (Query.parse "employees join depts")));
    test "parse errors are reported" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Query.parse bad with
            | _ -> Alcotest.failf "expected Parse_error for %S" bad
            | exception Query.Parse_error _ -> ())
          [
            "";
            "employees |";
            "employees | frobnicate x";
            "employees | where";
            "employees | where dept =";
            "(employees";
            "employees | select";
            "employees | rename dept";
            "employees extra";
            "employees | where dept ~ 3";
          ]);
    test "string literals keep spaces" `Quick (fun () ->
        match Query.parse "t | where name = \"ada lovelace\"" with
        | Query.Where (Pred.Eq (_, Pred.Lit (Value.Str "ada lovelace")), _) -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "negative integer literals" `Quick (fun () ->
        match Query.parse "t | where id = -3" with
        | Query.Where (Pred.Eq (_, Pred.Lit (Value.Int (-3))), _) -> ()
        | _ -> Alcotest.fail "unexpected parse");
  ]

(* Pretty-print / re-parse round trip over generated queries. *)

let gen_pred : Pred.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun i -> Pred.(col "id" = int i)) small_nat;
        map (fun i -> Pred.(col "salary" < int i)) small_nat;
        map (fun s -> Pred.(col "dept" = str s)) (string_size ~gen:(char_range 'a' 'z') (int_bound 6));
        return Pred.(col "id" <= int 5);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun p q -> Pred.And (p, q)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun p q -> Pred.Or (p, q)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun p -> Pred.Not p) (go (depth - 1)));
        ]
  in
  go 2

let gen_query : Query.t QCheck.arbitrary =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then return (Query.Base "employees")
    else
      frequency
        [
          (2, return (Query.Base "employees"));
          (2, map2 (fun p q -> Query.Where (p, q)) gen_pred (go (depth - 1)));
          ( 1,
            map
              (fun q -> Query.Project ([ "id"; "name" ], q))
              (go (depth - 1)) );
          ( 1,
            map
              (fun q -> Query.Rename ([ ("dept", "team") ], q))
              (go (depth - 1)) );
          (1, map2 (fun a b -> Query.Union (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Query.Join (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  QCheck.make ~print:Query.to_string (go 3)

let prop_tests =
  [
    QCheck.Test.make ~count:500 ~name:"pretty-print then parse is identity"
      gen_query
      (fun q -> Query.parse (Query.to_string q) = q);
    QCheck.Test.make ~count:200 ~name:"stacked wheres commute"
      (QCheck.make gen_pred)
      (fun p ->
        let open Query in
        let q1 = Where (p, Where (Pred.(col "id" <= int 20), Base "employees")) in
        let q2 = Where (Pred.(col "id" <= int 20), Where (p, Base "employees")) in
        Table.equal (eval env q1) (eval env q2));
    QCheck.Test.make ~count:200
      ~name:"generated queries evaluate without raising" gen_query
      (fun q ->
        match Query.eval env q with
        | (_ : Table.t) -> true
        | exception Table.Table_error _ ->
            (* union/diff of schema-incompatible subqueries is a
               legitimate evaluation-time error *)
            true
        | exception Schema.Schema_error _ -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Updatable views: the query -> lens compiler                         *)
(* ------------------------------------------------------------------ *)

let schema = Workload.employees_schema

let view_lens_tests =
  [
    test "lens_of_string compiles a select/project pipeline" `Quick
      (fun () ->
        let l =
          Query.lens_of_string ~schema ~key:[ "id" ]
            "employees | where dept = \"Engineering\" | select id, name"
        in
        check Helpers.table "get = eval"
          (Query.run (fun _ -> employees)
             "employees | where dept = \"Engineering\" | select id, name")
          (Esm_lens.Lens.get l employees));
    test "view edits write back through the compiled lens" `Quick (fun () ->
        let l =
          Query.lens_of_string ~schema ~key:[ "id" ]
            "employees | where dept = \"Engineering\" | select id, name"
        in
        let view = Esm_lens.Lens.get l employees in
        match Table.rows view with
        | first :: _ ->
            let view_schema = Table.schema view in
            let renamed =
              Table.insert
                (Table.delete view first)
                (Row.set view_schema first "name" (Value.Str "renamed!"))
            in
            let source' = Esm_lens.Lens.put l employees renamed in
            let id = Row.get view_schema first "id" in
            let updated =
              List.find
                (fun r -> Value.equal (Row.get schema r "id") id)
                (Table.rows source')
            in
            check Helpers.value "name written back" (Value.Str "renamed!")
              (Row.get schema updated "name");
            (* dropped columns recovered from the old source *)
            check Alcotest.bool "salary preserved" true
              (Value.equal
                 (Row.get schema updated "salary")
                 (Row.get schema
                    (List.find
                       (fun r -> Value.equal (Row.get schema r "id") id)
                       (Table.rows employees))
                    "salary"))
        | [] -> Alcotest.fail "expected a non-empty view");
    test "rename stages rename the key too" `Quick (fun () ->
        let l =
          Query.lens_of_string ~schema ~key:[ "id" ]
            "employees | rename id as pk | select pk, name"
        in
        check Alcotest.bool "get works" true
          (Schema.mem (Table.schema (Esm_lens.Lens.get l employees)) "pk"));
    test "projecting away the key is rejected" `Quick (fun () ->
        match
          Query.lens_of_string ~schema ~key:[ "id" ] "employees | select name"
        with
        | _ -> Alcotest.fail "expected Not_updatable"
        | exception Query.Not_updatable _ -> ());
    test "set-operation views are rejected" `Quick (fun () ->
        match
          Query.lens_of_string ~schema ~key:[ "id" ] "employees union employees"
        with
        | _ -> Alcotest.fail "expected Not_updatable"
        | exception Query.Not_updatable _ -> ());
    test "where on an unknown column is rejected" `Quick (fun () ->
        match
          Query.lens_of_string ~schema ~key:[ "id" ]
            "employees | where nonsense = 3"
        with
        | _ -> Alcotest.fail "expected Not_updatable"
        | exception Query.Not_updatable _ -> ());
  ]

(* The compiled view lens is well-behaved (on FD-respecting data), hence
   an entangled state monad via Lemma 4. *)
let gen_src =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Workload.employees ~seed ~size))

let compiled = 
  Query.lens_of_string ~schema ~key:[ "id" ]
    "employees | where dept = \"Engineering\" | select id, name, dept | rename name as who"

let gen_view = QCheck.map (Esm_lens.Lens.get compiled) gen_src

let view_lens_law_tests =
  Esm_lens.Lens_laws.well_behaved ~count:100 ~name:"compiled view lens"
    compiled ~gen_s:gen_src ~gen_v:gen_view ~eq_s:Table.equal
    ~eq_v:Table.equal

let suite =
  unit_tests @ view_lens_tests
  @ Helpers.q (prop_tests @ view_lens_law_tests)
