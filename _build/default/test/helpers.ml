(** Shared helpers for the test suite. *)

(** Convert a list of QCheck tests into alcotest cases. *)
let q (tests : QCheck.Test.t list) : unit Alcotest.test_case list =
  List.map QCheck_alcotest.to_alcotest tests

(** Assert that a QCheck law test FAILS — used by the negative tests that
    confirm the law harness can detect broken structures. *)
let expect_law_failure (name : string) (t : QCheck.Test.t) :
    unit Alcotest.test_case =
  Alcotest.test_case name `Quick (fun () ->
      match QCheck.Test.check_exn t with
      | () -> Alcotest.failf "%s: law unexpectedly held" name
      | exception QCheck.Test.Test_fail (_, _) -> ())

(* Common generators. *)

let small_int : int QCheck.arbitrary = QCheck.small_signed_int
let short_string : string QCheck.arbitrary = QCheck.small_string

let pair_int_string : (int * string) QCheck.arbitrary =
  QCheck.pair small_int short_string

(* Alcotest testables. *)

let tree : Esm_lens.Tree.t Alcotest.testable =
  Alcotest.testable Esm_lens.Tree.pp Esm_lens.Tree.equal

let table : Esm_relational.Table.t Alcotest.testable =
  Alcotest.testable Esm_relational.Table.pp Esm_relational.Table.equal

let value : Esm_relational.Value.t Alcotest.testable =
  Alcotest.testable Esm_relational.Value.pp Esm_relational.Value.equal
