(** The programmatic certification API: agrees with the QCheck suites on
    lawful instances, pinpoints violated laws with counterexamples on
    broken ones. *)

open Esm_core

let values = [ -3; 0; 1; 2; 7 ]

let certify_int packed =
  Certify.certify ~values_a:values ~values_b:values ~eq_a:Int.equal
    ~eq_b:Int.equal ~show_a:string_of_int ~show_b:string_of_int packed

let find law (r : Certify.report) =
  List.find (fun v -> String.equal v.Certify.law law) r.Certify.verdicts

let check = Alcotest.check
let test = Alcotest.test_case

let parity_report =
  certify_int
    (Concrete.pack ~bx:(Concrete.of_algebraic Fixtures.parity_undoable)
       ~init:(0, 0)
       ~eq_state:Esm_laws.Equality.(pair int int))

let pair_report =
  certify_int
    (Concrete.pack
       ~bx:(Concrete.pair () : (int, int, int * int) Concrete.set_bx)
       ~init:(0, 0)
       ~eq_state:Esm_laws.Equality.(pair int int))

(* A broken bx: set_a drops the sign of the value. *)
let broken_report =
  certify_int
    (Concrete.pack
       ~bx:
         {
           Concrete.name = "broken-abs";
           get_a = fst;
           get_b = snd;
           set_a = (fun a (_, b) -> (abs a, b));
           set_b = (fun b (a, _) -> (a, b));
         }
       ~init:(0, 0)
       ~eq_state:Esm_laws.Equality.(pair int int))

let suite =
  [
    test "lawful instances are certified well-behaved" `Quick (fun () ->
        check Alcotest.bool "parity" true (Certify.well_behaved parity_report);
        check Alcotest.bool "pair" true (Certify.well_behaved pair_report));
    test "overwriteability and commutation are reported per instance" `Quick
      (fun () ->
        check Alcotest.bool "parity SS" true (find "SS_a" parity_report).Certify.holds;
        check Alcotest.bool "parity commute" false
          (find "commute" parity_report).Certify.holds;
        check Alcotest.bool "pair commute" true
          (find "commute" pair_report).Certify.holds);
    test "a broken bx fails exactly the violated law" `Quick (fun () ->
        check Alcotest.bool "not well-behaved" false
          (Certify.well_behaved broken_report);
        let sg_a = find "SG_a" broken_report in
        check Alcotest.bool "SG_a violated" false sg_a.Certify.holds;
        check Alcotest.bool "counterexample reported" true
          (Option.is_some sg_a.Certify.counterexample);
        (* the other side is untouched and stays lawful *)
        check Alcotest.bool "SG_b fine" true (find "SG_b" broken_report).Certify.holds);
    test "pp_report renders every verdict" `Quick (fun () ->
        let rendered = Format.asprintf "%a" Certify.pp_report parity_report in
        let contains needle =
          let nl = String.length needle and hl = String.length rendered in
          let rec go i =
            i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun law -> check Alcotest.bool law true (contains law))
          [ "GS_a"; "GS_b"; "SG_a"; "SG_b"; "SS_a"; "commute" ]);
  ]
