(* esmql — the ESMQL front-end CLI (see docs/QUERY.md).

   Compile .esmql scripts through the law-level gate and execute them
   against one of the three backends:

     esmql [--backend mem|store|remote] [--mode strict|fallback]
           [--check] [--json] [--seed N] [--size N] [--dir DIR]
           [--base NAME=FILE]... FILE...

   The default environment is one base table, `employees`
   (Esm_relational.Workload, keyed by id), seeded deterministically.
   Repeated --base NAME=FILE flags register extra base tables: FILE is
   line-oriented (schema <col>:<ty>..., optional key <col>..., then
   row lines in the wire row grammar), so one script can entangle
   views over several independently-defined bases — see
   examples/two_bases.esmql.

   Exit codes: 0 every file compiled (and, without --check, executed)
   cleanly; 1 a parse/compile rejection or a failed execution step;
   2 usage error.  CHAOS_SEED/CHAOS_RATE install deterministic fault
   injection around execution, as in esm_syncd. *)

open Esm_core
open Esm_analysis
module Rel = Esm_relational
module Ql = Esm_ql

let with_env_chaos (f : unit -> 'a) : 'a =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> f ()
  | Some s ->
      let seed =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            prerr_endline "esmql: CHAOS_SEED must be an integer";
            exit 2
      in
      let rate =
        match Sys.getenv_opt "CHAOS_RATE" with
        | Some r -> (
            match float_of_string_opt r with
            | Some f -> f
            | None ->
                prerr_endline "esmql: CHAOS_RATE must be a float";
                exit 2)
        | None -> 0.05
      in
      (* injection is scoped to the net.* sites: faults hit the wire
         (remote backend), never the bx core, so the same script under
         the same seed must yield the same answers on every backend *)
      Chaos.with_chaos
        (Chaos.make ~rate ~seed ())
        (fun () -> Chaos.at_sites [ "net." ] f)

let bases ~seed ~size : Ql.Check.base list =
  [
    {
      Ql.Check.bname = "employees";
      bschema = Rel.Workload.employees_schema;
      bkey = [ "id" ];
      binit = Rel.Workload.employees ~seed ~size;
    };
  ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --base NAME=FILE: register an extra base table.  FILE is
   line-oriented ('#' and blank lines ignored):

     schema <col>:<int|str|bool>, <col>:<ty>, ...   (first, exactly once)
     key <col>[, <col>...]                          (optional; default:
                                                     the first column)
     row <value>, <value>, ...                      (Wire row grammar)

   Row values reuse the wire grammar (Esm_sync.Wire.parse_row), so the
   same literals work in base files, wire scripts and ESMQL deltas. *)
let parse_base_file ~(name : string) (path : string) : Ql.Check.base =
  let fail lineno fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "esmql: --base %s: %s:%d: %s\n" name path lineno m;
        exit 2)
      fmt
  in
  let ty_of_string lineno = function
    | "int" -> Rel.Value.Tint
    | "str" -> Rel.Value.Tstr
    | "bool" -> Rel.Value.Tbool
    | t -> fail lineno "unknown column type %S (int, str or bool)" t
  in
  let schema = ref None and key = ref None and rows = ref [] in
  let lines = String.split_on_char '\n' (read_file path) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | None -> fail lineno "expected 'schema', 'key' or 'row' directive"
        | Some sp -> (
            let kw = String.sub line 0 sp in
            let body =
              String.trim
                (String.sub line (sp + 1) (String.length line - sp - 1))
            in
            match kw with
            | "schema" ->
                if !schema <> None then fail lineno "duplicate schema line";
                let cols =
                  List.map
                    (fun col ->
                      match String.split_on_char ':' (String.trim col) with
                      | [ n; t ] ->
                          (String.trim n, ty_of_string lineno (String.trim t))
                      | _ -> fail lineno "expected <col>:<ty> in %S" col)
                    (String.split_on_char ',' body)
                in
                schema := Some (Rel.Schema.make cols)
            | "key" ->
                if !key <> None then fail lineno "duplicate key line";
                key :=
                  Some
                    (List.map String.trim (String.split_on_char ',' body))
            | "row" -> (
                if !schema = None then fail lineno "row before schema";
                match Esm_sync.Wire.parse_row body with
                | r -> rows := r :: !rows
                | exception Error.Bx_error e ->
                    fail lineno "%s" (Error.message e))
            | kw -> fail lineno "unknown directive %S" kw))
    lines;
  match !schema with
  | None -> fail 0 "missing schema line"
  | Some schema ->
      let key =
        match !key with
        | Some k -> k
        | None -> [ List.hd (Rel.Schema.column_names schema) ]
      in
      let binit =
        try Rel.Table.of_rows schema (List.rev !rows)
        with Error.Bx_error e -> fail 0 "%s" (Error.message e)
      in
      { Ql.Check.bname = name; bschema = schema; bkey = key; binit }

let parse_base_spec (spec : string) : string * string =
  match String.index_opt spec '=' with
  | Some i when i > 0 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | _ ->
      prerr_endline "esmql: --base expects NAME=FILE";
      exit 2

let view_json (cv : Ql.Check.cview) =
  Printf.sprintf
    {|{"view":"%s","query":"%s","inferred":"%s","requested":"%s","mode":"%s","downgraded":%b,"diagnostics":%s}|}
    (Lint.json_escape cv.Ql.Check.vname)
    (Lint.json_escape (Rel.Query.to_string cv.Ql.Check.query))
    (Law_infer.to_string cv.Ql.Check.inferred)
    (Law_infer.to_string cv.Ql.Check.requested)
    (Esm_ql.Ast.mode_name cv.Ql.Check.mode)
    cv.Ql.Check.downgraded
    (Lint.diagnostics_to_json cv.Ql.Check.lint)

let report_check ~json path (c : Ql.Check.compiled) =
  if json then
    Printf.printf {|{"file":"%s","ok":true,"views":[%s]}|}
      (Lint.json_escape path)
      (String.concat "," (List.map view_json c.Ql.Check.views))
  else begin
    Printf.printf "%s: ok (%d view%s)\n" path
      (List.length c.Ql.Check.views)
      (if List.length c.Ql.Check.views = 1 then "" else "s");
    List.iter
      (fun (cv : Ql.Check.cview) ->
        Printf.printf "  view %s: inferred %s, requested %s%s\n"
          cv.Ql.Check.vname
          (Law_infer.to_string cv.Ql.Check.inferred)
          (Law_infer.to_string cv.Ql.Check.requested)
          (if cv.Ql.Check.downgraded then " — downgraded (runtime-validated)"
           else ""))
      c.Ql.Check.views
  end

let report_error ~json path (e : Error.t) =
  if json then
    Printf.printf {|{"file":"%s","ok":false,"error":"%s"}|}
      (Lint.json_escape path)
      (Lint.json_escape (Error.message e))
  else Printf.printf "%s: REJECTED: %s\n" path (Error.message e)

let run_file ~mode ~backend ~check ~json ~dir ~bases path : bool =
  match Ql.Parser.parse (read_file path) with
  | Error e ->
      report_error ~json path e;
      if json then print_newline ();
      false
  | Ok script -> (
      match Ql.Check.compile ~mode ~bases script with
      | Error e ->
          report_error ~json path e;
          if json then print_newline ();
          false
      | Ok compiled ->
          if check then begin
            report_check ~json path compiled;
            if json then print_newline ();
            true
          end
          else
            let trace =
              with_env_chaos (fun () -> Ql.Exec.run ?dir ~kind:backend compiled)
            in
            if json then print_endline (Ql.Exec.to_json ~backend trace)
            else Format.printf "== %s (%s)@.%a@." path
                (Ql.Backend.kind_name backend)
                Ql.Exec.pp trace;
            trace.Ql.Exec.ok)

let () =
  let backend = ref "mem" in
  let mode = ref "strict" in
  let check = ref false in
  let json = ref false in
  let seed = ref 42 in
  let size = ref 60 in
  let dir = ref "" in
  let base_specs = ref [] in
  let files = ref [] in
  let specs =
    [
      ( "--backend",
        Arg.Set_string backend,
        "KIND execution backend: mem, store or remote (default mem)" );
      ( "--mode",
        Arg.Set_string mode,
        "MODE initial gate mode: strict or fallback (default strict)" );
      ("--check", Arg.Set check, " compile and lint only, execute nothing");
      ("--json", Arg.Set json, " machine-readable output, one object per file");
      ("--seed", Arg.Set_int seed, "N employees workload seed (default 42)");
      ("--size", Arg.Set_int size, "N employees table size (default 60)");
      ( "--dir",
        Arg.Set_string dir,
        "DIR durable-log directory (store backend only)" );
      ( "--base",
        Arg.String (fun s -> base_specs := s :: !base_specs),
        "NAME=FILE register an extra base table (repeatable; FILE holds \
         schema/key/row lines, see docs/QUERY.md)" );
    ]
  in
  let usage =
    "esmql [--backend mem|store|remote] [--check] [--json] [--base \
     NAME=FILE]... FILE.esmql..."
  in
  Arg.parse specs (fun f -> files := f :: !files) usage;
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let backend =
    match Ql.Backend.kind_of_string !backend with
    | Some k -> k
    | None ->
        prerr_endline "esmql: --backend must be mem, store or remote";
        exit 2
  in
  let mode =
    match Ql.Ast.mode_of_string !mode with
    | Some m -> m
    | None ->
        prerr_endline "esmql: --mode must be strict or fallback";
        exit 2
  in
  let dir = if !dir = "" then None else Some !dir in
  let extra =
    List.rev_map
      (fun spec ->
        let name, file = parse_base_spec spec in
        parse_base_file ~name file)
      !base_specs
  in
  let bases = bases ~seed:!seed ~size:!size @ extra in
  let rec dup = function
    | [] -> None
    | (b : Ql.Check.base) :: rest ->
        if List.exists (fun (b' : Ql.Check.base) -> b'.bname = b.bname) rest
        then Some b.Ql.Check.bname
        else dup rest
  in
  (match dup bases with
  | Some n ->
      Printf.eprintf "esmql: duplicate base table %S\n" n;
      exit 2
  | None -> ());
  let ok =
    (* no short-circuit: every file is processed and reported *)
    List.fold_left
      (fun acc path ->
        run_file ~mode ~backend ~check:!check ~json:!json ~dir ~bases path
        && acc)
      true files
  in
  exit (if ok then 0 else 1)
