(* esm_syncd: the sync engine driver — a deterministic in-process
   "daemon" serving concurrent sessions against a replicated relational
   store (Esm_sync over the employees where|select lens).

   Modes:

     esm_syncd --listen ADDR [--dir D]
       A real daemon: serve the store over length-framed wire messages
       on a Unix-domain ("unix:PATH") or TCP ("HOST:PORT", ":PORT")
       socket, multiplexing every connection over one select loop.
       SIGTERM/SIGINT request a clean drain: stop accepting, flush
       queued responses, print the transport stats, exit 0.

     esm_syncd --connect ADDR [--sessions N] [--ops N] [--seed N]
       The matching client driver: bind N remote sessions (names are
       pid-unique, so several --connect processes can share a server),
       round-robin a seeded workload of batch commits, pulls, views and
       pings across them with full retry/idempotency, then pull each
       session to the head and report convergence.  Exit 1 if any
       session failed or did not converge.

     esm_syncd --soak --chaos-net [--seed N] [--ops N] [--sessions N]
              [--require-converged]
       Run the remote-session workload through the deterministic chaos
       network (sites net.drop/dup/reorder/truncate/delay/halfopen,
       driven by CHAOS_SEED like every other site) against the real
       server core, and check the transport's own invariants:
         no-lost/no-dup  the store head equals the number of commits
                         the clients got (or resolved) an ack for —
                         retries across half-open connections are
                         deduplicated server-side, never double-applied,
                         and every acked commit is really in the log;
         convergence     after the net heals, every session pulls to
                         the store head (enforced when
                         --require-converged is given).
       Exit 1 on any violation.

     esm_syncd --script FILE
       Replay a wire-protocol script: each non-empty, non-# line is
       "@<session> <request>" in the grammar of Esm_sync.Wire; lines
       are processed in order (the script IS the schedule, so runs are
       reproducible), and each request/response pair is printed.
       Exit 2 on malformed script lines.

       A FILE ending in .esmql is instead parsed as an ESMQL script
       (see docs/QUERY.md), compiled through the law-level gate and
       executed against the daemon's default store.  Exit 2 on a
       parse/compile rejection, 1 on a failed execution step.

     esm_syncd --soak [--seed N] [--ops N] [--sessions N]
              [--dir D] [--kill-at N]
       Run a seeded random multi-session workload and check the sync
       engine's three invariants:
         recovery    crash+replay reproduces the exact pre-crash views;
         batching    a batched delta commit equals the same deltas
                     committed one at a time (oracle replay);
         convergence every session pulls to the store head.
       Exit 1 on any violation.  With --dir the store persists its
       oplog to D (write-ahead, Fsync_every 8); with --kill-at N the
       process hard-exits (status 130, no flushing, mid-record when N
       lands there) after the Nth durable write syscall — the
       crash-injection half of the durability story.

     esm_syncd --soak --shards N [--gossip-every K] [--compact]
              [--dir D] [--kill-at N]
       The sharded soak: partition the store across N shards (row
       ownership: id mod N), route every batch commit through the
       group router, and run one anti-entropy gossip round every K ops
       (injected faults drop edges; later rounds absorb them).  Checks
       per-shard recovery, per-shard head = acked accounting, and —
       after a fault-free quiesce — the cross-shard convergence
       invariant (every shard reconstructs the authoritative union).
       With --compact each shard periodically drops its oplog prefix
       below its latest durable snapshot; with --dir the run ends with
       an on-disk audit: no retained record at or below the horizon,
       the log bounded by the snapshot cadence, and a reopen that
       reaches the exact pre-close head.  --kill-at also ticks on the
       compaction path's fault sites (tmp writes, fsync, rename, fd
       switch-over), giving the torn-compaction crash matrix.

     esm_syncd --soak --chaos-net --shards N [--gossip-every K]
       The sharded chaos-net soak: one chaos network per shard,
       sessions pinned round-robin (fresh row ids stay in the pinned
       shard's residue class), gossip interleaved with the faulty
       traffic, then heal, quiesce, and assert per-shard no-lost/no-dup
       accounting plus cross-shard convergence.

     esm_syncd --check-dir D [--seed N] [--ops N] [--sessions N]
              [--shards N [--compact]]
       The recovery half: rerun the identical soak (same seed, same
       CHAOS_SEED schedule — chaos visits are counted per site, so the
       uncrashed rerun performs the same commit sequence) into a
       scratch directory D.oracle, then reopen the killed log in D
       *outside* chaos and diff the recovered store against the
       oracle's prefix at the recovered version.  Exit 1 on any
       divergence or on unrecoverable corruption.  With --shards the
       oracle is the rerun's recorded per-version view history (a
       from-zero oplog replay is impossible once compaction dropped
       the prefix) and every killed shard directory is checked.

   All modes honour CHAOS_SEED (and optional CHAOS_RATE): fault
   injection at the sync chaos sites (append/replay/rebase/durable
   write) plus the library-wide ones, with the injection/fallback
   counts reported. *)

open Esm_core
open Esm_relational
open Esm_sync

let eng_lens =
  Query.lens_of_string ~schema:Workload.employees_schema ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let default_codec =
  let schema_b =
    Table.schema (Esm_lens.Lens.get eng_lens (Workload.employees ~seed:1 ~size:1))
  in
  Wire.durable_op_codec ~schema_a:Workload.employees_schema ~schema_b

let default_packed ~seed ~size =
  Concrete.packed_of_lens ~vwb:false
    ~init:(Workload.employees ~seed ~size)
    ~eq_state:Table.equal eng_lens

let default_store ?dir ~seed ~size () : Wire.rstore =
  let persist =
    Option.map
      (fun dir ->
        Store.persist ~fsync:(Durable_log.Fsync_every 8) ~dir default_codec)
      dir
  in
  Store.of_packed ~name:"employees" ~snapshot_every:8
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all ?persist
    (default_packed ~seed ~size)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Sharded store helpers                                               *)
(* ------------------------------------------------------------------ *)

(* Row ownership for the employees substrate: id mod shards.  Both the
   A rows and the B view rows carry the id as their first column, and
   the congruence is invertible — the sharded net soak generates each
   session's fresh ids inside its own shard's residue class, so a
   session's commits land exactly at its pinned shard. *)
let shard_of_emp_row ~shards (row : Row.t) : int =
  match Row.to_list row with
  | Value.Int id :: _ -> ((id mod shards) + shards) mod shards
  | _ -> 0

let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard-%d" i)

(* Each shard's initial state is its own partition of the seed table:
   the union of the partitions is the unsharded init, so the
   authoritative (union) views line up with the single-store soak. *)
let partition_init ~shards ~seed ~size : Table.t array =
  let init = Workload.employees ~seed ~size in
  let buckets = Array.make shards [] in
  List.iter
    (fun r ->
      let i = shard_of_emp_row ~shards r in
      buckets.(i) <- r :: buckets.(i))
    (Table.rows init);
  Array.map
    (fun rows -> Table.of_rows Workload.employees_schema (List.rev rows))
    buckets

let shard_packed ~shards ~seed ~size i =
  let parts = partition_init ~shards ~seed ~size in
  Concrete.packed_of_lens ~vwb:false ~init:parts.(i) ~eq_state:Table.equal
    eng_lens

let shard_group ?dir ~seed ~size ~shards () : Shard.Relational.rt =
  let stores =
    Array.init shards (fun i ->
        let persist =
          Option.map
            (fun d ->
              Store.persist ~fsync:(Durable_log.Fsync_every 8)
                ~dir:(shard_dir d i) default_codec)
            dir
        in
        Store.of_packed
          ~name:(Printf.sprintf "employees-%d" i)
          ~snapshot_every:8 ~apply_da:Row_delta.apply_all
          ~apply_db:Row_delta.apply_all ?persist
          (shard_packed ~shards ~seed ~size i))
  in
  Shard.make ~stores
    ~route:
      (Shard.Relational.route_op ~shards
         ~shard_of_row:(shard_of_emp_row ~shards))
    ()

(* ------------------------------------------------------------------ *)
(* Script mode                                                         *)
(* ------------------------------------------------------------------ *)

(* An .esmql script runs through the query front-end against the same
   default employees store the wire scripts exercise: parse, gate
   (strict unless the script says otherwise), execute on the store
   backend.  Parse/compile rejections exit 2 like malformed wire
   lines; a failed execution step exits 1. *)
let run_esmql_script (path : string) : int =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let bases =
    [
      {
        Esm_ql.Check.bname = "employees";
        bschema = Workload.employees_schema;
        bkey = [ "id" ];
        binit = Workload.employees ~seed:11 ~size:24;
      };
    ]
  in
  match Esm_ql.Parser.parse (read_file path) with
  | Error e ->
      Printf.printf "!! %s\n" (Esm_core.Error.message e);
      2
  | Ok script -> (
      match Esm_ql.Check.compile ~bases script with
      | Error e ->
          Printf.printf "!! %s\n" (Esm_core.Error.message e);
          2
      | Ok compiled ->
          let trace = Esm_ql.Exec.run ~kind:Esm_ql.Backend.Store compiled in
          Format.printf "%a@." Esm_ql.Exec.pp trace;
          if trace.Esm_ql.Exec.ok then 0 else 1)

let run_script (path : string) : int =
  if Filename.check_suffix path ".esmql" then run_esmql_script path
  else
  let srv = Wire.serve (default_store ~seed:11 ~size:24 ()) in
  let ic = open_in path in
  let bad = ref false in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         if line.[0] <> '@' then (
           Printf.printf "!! line %d: expected '@<session> <request>'\n"
             !lineno;
           bad := true)
         else
           let body = String.sub line 1 (String.length line - 1) in
           let session, req =
             match String.index_opt body ' ' with
             | None -> (body, "")
             | Some i ->
                 ( String.sub body 0 i,
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) )
           in
           Printf.printf "@%s> %s\n" session req;
           match Wire.handle_line srv ~session req with
           | resp -> Printf.printf "@%s< %s\n" session resp
           | exception Error.Bx_error e when e.Error.kind = Error.Parse ->
               Printf.printf "!! line %d: %s\n" !lineno (Error.message e);
               bad := true
     done
   with End_of_file -> close_in ic);
  if !bad then 2 else 0

(* ------------------------------------------------------------------ *)
(* Soak mode                                                           *)
(* ------------------------------------------------------------------ *)

let soak ?dir ?(quiet = false) ~seed ~ops:n_ops ~sessions:n_sessions () :
    int * Wire.rstore =
  let store = default_store ?dir ~seed ~size:48 () in
  let r = Workload.rng ~seed in
  let sessions =
    List.init n_sessions (fun i ->
        let side = if i mod 2 = 0 then `A else `B in
        Session.bind store ~name:(Printf.sprintf "s%d" (i + 1)) ~side)
  in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let fresh_id = ref 100_000 in
  let new_row side =
    incr fresh_id;
    let name =
      Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id
    in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        (* view rows must satisfy the lens predicate to be puttable *)
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let random_deltas (sess : Wire.rsession) =
    let view = match Session.view sess with `A t | `B t -> t in
    let rows = Table.rows view in
    let n = 1 + Workload.int r 4 in
    List.init n (fun _ ->
        if rows = [] || Workload.int r 3 = 0 then
          Row_delta.Add (new_row (Session.side sess))
        else Row_delta.Remove (Workload.pick r rows))
  in
  let commits = ref 0 and failures = ref 0 and recoveries = ref 0 in
  let crash_every = max 5 (n_ops / 8) in
  for i = 1 to n_ops do
    let sess = Workload.pick r sessions in
    let op =
      match Session.side sess with
      | `A -> Store.Batch_a (random_deltas sess)
      | `B -> Store.Batch_b (random_deltas sess)
    in
    (match Session.submit_rebase sess op with
    | Ok _ -> incr commits
    | Error e when e.Error.kind = Error.Conflict ->
        (* submit_rebase pulled to head first; a conflict here means the
           optimistic check is broken *)
        fail "op %d: conflict after rebase: %s" i (Error.message e)
    | Error _ ->
        (* a failing put (or injected fault) rolls back and appends
           nothing — legitimate under chaos, checked by recovery below *)
        incr failures);
    (* the poll traffic: the session that just synced re-polls (the
       overwhelmingly common "nothing changed" case — must hit the
       short-circuit), and a random bystander polls too (hit or miss
       depending on whether it saw the commit) *)
    ignore (Session.pull sess);
    ignore (Session.pull (Workload.pick r sessions));
    if i mod crash_every = 0 then (
      (* recovery invariant: crash + replay = the uncrashed store *)
      let va = Store.view_a store and vb = Store.view_b store in
      let v = Store.version store in
      Store.crash store;
      Store.recover store;
      incr recoveries;
      if Store.version store <> v then
        fail "op %d: recovery stopped at version %d, expected %d" i
          (Store.version store) v;
      if not (Table.equal (Store.view_a store) va) then
        fail "op %d: recovered A view differs from pre-crash" i;
      if not (Table.equal (Store.view_b store) vb) then
        fail "op %d: recovered B view differs from pre-crash" i)
  done;
  (* batching invariant: replaying the oplog with every batch split
     into one-at-a-time delta commits lands on the same views *)
  Chaos.protected (fun () ->
      let oracle = default_store ~seed ~size:48 () in
      let commit session op =
        match Store.commit ~session oracle op with
        | Ok _ -> ()
        | Error e -> fail "oracle replay commit failed: %s" (Error.message e)
      in
      List.iter
        (fun (e : _ Oplog.entry) ->
          match e.Oplog.op with
          | Store.Batch_a ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_a [ d ])) ds
          | Store.Batch_b ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_b [ d ])) ds
          | op -> commit e.Oplog.session op)
        (Store.entries_since store 0);
      if not (Table.equal (Store.view_a oracle) (Store.view_a store)) then
        fail "batched A view differs from one-at-a-time oracle";
      if not (Table.equal (Store.view_b oracle) (Store.view_b store)) then
        fail "batched B view differs from one-at-a-time oracle");
  (* convergence invariant: every session pulls to the store head *)
  List.iter
    (fun sess ->
      ignore (Session.pull sess);
      if Session.base sess <> Store.version store then
        fail "session %s converged at %d, store head is %d"
          (Session.name sess) (Session.base sess) (Store.version store))
    sessions;
  if not quiet then begin
    Printf.printf
      "soak: seed=%d ops=%d sessions=%d commits=%d failed=%d recoveries=%d \
       head=%d%s\n"
      seed n_ops n_sessions !commits !failures !recoveries
      (Store.version store)
      (match dir with None -> "" | Some d -> " dir=" ^ d);
    (* the incremental layer's poll statistics: the CI soak asserts a
       nonzero hit count (--require-poll-hits), so the caches are
       provably exercised, not silently bypassed *)
    let ph, pm = Esm_incr.Stats.counts "session.poll" in
    let vh, vm = Esm_incr.Stats.counts "store.view" in
    let rate h m = if h + m = 0 then 0.0 else 100.0 *. float h /. float (h + m) in
    Printf.printf
      "poll: hits=%d misses=%d hit-rate=%.1f%%  store-view: hits=%d \
       misses=%d hit-rate=%.1f%%\n"
      ph pm (rate ph pm) vh vm (rate vh vm)
  end;
  match !violations with
  | [] ->
      if not quiet then print_endline "soak: all invariants hold";
      (0, store)
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      (1, store)

(* ------------------------------------------------------------------ *)
(* Sharded soak: N shards, routed commits, gossip replication,         *)
(* snapshot-anchored compaction, per-shard crash/recovery              *)
(* ------------------------------------------------------------------ *)

(* Reopen one shard's killed/closed directory outside fault injection. *)
let reopen_shard ~seed ~shards i (d : string) =
  Store.reopen
    ~name:(Printf.sprintf "employees-%d" i)
    ~snapshot_every:8 ~apply_da:Row_delta.apply_all
    ~apply_db:Row_delta.apply_all ~codec:default_codec ~dir:(shard_dir d i)
    (shard_packed ~shards ~seed ~size:48 i)

(* The sharded soak drives routed commits at the group, gossips every
   [gossip_every] ops (faults drop edges; anti-entropy retries), and —
   with [compact] — periodically compacts every shard's oplog to its
   latest snapshot.  It records every committed version's views per
   shard (the compaction-proof oracle [check_shards] replays against:
   with the log prefix dropped, a from-zero replay is impossible by
   design).  Stores are closed before returning; with a persisted
   compacting run the on-disk audit then asserts the acceptance
   criterion directly: no retained record below the latest snapshot
   version, bounded log length, and a reopen that reaches the exact
   pre-close head. *)
let shard_soak ?dir ?(quiet = false) ~compact:do_compact ~seed ~ops:n_ops
    ~sessions:n_sessions ~shards:n_shards ~gossip_every () :
    int * (int, Table.t * Table.t) Hashtbl.t array =
  let group = shard_group ?dir ~seed ~size:48 ~shards:n_shards () in
  let stores = Array.init n_shards (Shard.store group) in
  let r = Workload.rng ~seed in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let histories = Array.init n_shards (fun _ -> Hashtbl.create 64) in
  let record j =
    Hashtbl.replace histories.(j)
      (Store.version stores.(j))
      (Store.view_a stores.(j), Store.view_b stores.(j))
  in
  Array.iteri (fun j _ -> record j) stores;
  let acked = Array.make n_shards 0 in
  let session_names =
    List.init n_sessions (fun i -> Printf.sprintf "s%d" (i + 1))
  in
  let fresh_id = ref 100_000 in
  let new_row side =
    incr fresh_id;
    let name =
      Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id
    in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let random_deltas side =
    (* removals draw from the authoritative union so a delta can target
       any shard — the router, not the workload, decides ownership *)
    let pool =
      match side with
      | `A -> Shard.Relational.authoritative_a group
      | `B -> Shard.Relational.authoritative_b group
    in
    let rows = Table.rows pool in
    let n = 1 + Workload.int r 4 in
    List.init n (fun _ ->
        if rows = [] || Workload.int r 3 = 0 then Row_delta.Add (new_row side)
        else Row_delta.Remove (Workload.pick r rows))
  in
  let commits = ref 0 and failures = ref 0 and recoveries = ref 0 in
  let compactions = ref 0 and compaction_errors = ref 0 in
  let crash_every = max 5 (n_ops / 8) in
  let compact_every = max 10 (n_ops / 8) in
  for i = 1 to n_ops do
    let session = Workload.pick r session_names in
    let op =
      if Workload.int r 2 = 0 then Store.Batch_a (random_deltas `A)
      else Store.Batch_b (random_deltas `B)
    in
    List.iter
      (fun (j, outcome) ->
        match outcome with
        | Ok _ ->
            incr commits;
            acked.(j) <- acked.(j) + 1;
            record j
        | Error _ ->
            (* a failed part rolls back at its shard only; rows are
               single-owner, so no row is left half-updated *)
            incr failures)
      (Shard.submit group ~session op);
    if i mod gossip_every = 0 then Shard.gossip_round group;
    if do_compact && i mod compact_every = 0 then
      Array.iteri
        (fun j res ->
          match res with
          | Ok 0 -> ()
          | Ok _ ->
              incr compactions;
              if Store.horizon stores.(j) = 0 then
                fail "op %d shard %d: compaction dropped entries, horizon 0"
                  i j
          | Error _ ->
              (* an injected fault mid-compaction: the full log is
                 still intact (write-ahead ordering), try again later *)
              incr compaction_errors)
        (Shard.compact group);
    if i mod crash_every = 0 then
      (* per-shard recovery invariant: crash + replay (which after a
         compaction starts from the snapshot horizon) = uncrashed *)
      Array.iteri
        (fun j st ->
          let va = Store.view_a st and vb = Store.view_b st in
          let v = Store.version st in
          Store.crash st;
          Store.recover st;
          incr recoveries;
          if Store.version st <> v then
            fail "op %d shard %d: recovery stopped at %d, expected %d" i j
              (Store.version st) v;
          if not (Table.equal (Store.view_a st) va) then
            fail "op %d shard %d: recovered A view differs" i j;
          if not (Table.equal (Store.view_b st) vb) then
            fail "op %d shard %d: recovered B view differs" i j)
        stores
  done;
  (* head accounting: every shard's head is exactly its acked commits *)
  Array.iteri
    (fun j st ->
      if Store.version st <> acked.(j) then
        fail "shard %d: head %d <> %d acked commits" j (Store.version st)
          acked.(j))
    stores;
  (* final anti-entropy on a healed net, then the cross-shard invariant *)
  Chaos.protected (fun () ->
      if not (Shard.gossip_until_quiescent ~max_rounds:(8 * n_shards) group)
      then fail "gossip did not quiesce on a fault-free net";
      if not (Shard.Relational.converged group) then
        fail "shards did not converge to the same entangled whole");
  let heads = Shard.heads group in
  let pre_close =
    Array.map (fun st -> (Store.version st, Store.view_a st, Store.view_b st))
      stores
  in
  (* a last fault-free compaction so the on-disk audit below sees the
     tightest horizon the protocol can justify *)
  if do_compact then
    Chaos.protected (fun () ->
        Array.iteri
          (fun j res ->
            match res with
            | Ok _ -> ()
            | Error e ->
                fail "shard %d: fault-free compaction failed: %s" j
                  (Error.message e))
          (Shard.compact group));
  Array.iter Store.close stores;
  (match dir with
  | Some d when do_compact ->
      (* the acceptance criterion, on disk: below the latest snapshot
         version the log holds nothing, the retained suffix is bounded
         by the snapshot cadence, and recovery still reaches the exact
         pre-close head *)
      Array.iteri
        (fun j (v, va, vb) ->
          (match Durable_log.load ~dir:(shard_dir d j) with
          | Error e ->
              fail "shard %d: post-soak load failed: %s" j (Error.message e)
          | Ok rec_ ->
              let hz = rec_.Durable_log.horizon in
              if v >= 8 && hz = 0 then
                fail "shard %d: head %d but horizon still 0 after --compact"
                  j v;
              List.iter
                (fun (e : Durable_log.raw_entry) ->
                  if e.Durable_log.version <= hz then
                    fail "shard %d: retained entry %d at or below horizon %d"
                      j e.Durable_log.version hz)
                rec_.Durable_log.entries;
              let retained = List.length rec_.Durable_log.entries in
              if retained > 8 then
                fail
                  "shard %d: %d entries retained — log not bounded by the \
                   snapshot cadence"
                  j retained;
              (match rec_.Durable_log.snapshot with
              | Some (sv, _) when sv >= hz -> ()
              | Some (sv, _) ->
                  fail "shard %d: snapshot %d below horizon %d" j sv hz
              | None -> fail "shard %d: no snapshot behind horizon %d" j hz));
          match Chaos.protected (fun () -> reopen_shard ~seed ~shards:n_shards j d) with
          | Error e ->
              fail "shard %d: reopen failed: %s" j (Error.message e)
          | Ok st ->
              if Store.version st <> v then
                fail "shard %d: reopened at %d, pre-close head was %d" j
                  (Store.version st) v;
              if not (Table.equal (Store.view_a st) va) then
                fail "shard %d: reopened A view differs from pre-close" j;
              if not (Table.equal (Store.view_b st) vb) then
                fail "shard %d: reopened B view differs from pre-close" j;
              Store.close st)
        pre_close
  | _ -> ());
  if not quiet then begin
    let g = Shard.stats group in
    Printf.printf
      "shard-soak: seed=%d ops=%d sessions=%d shards=%d commits=%d failed=%d \
       recoveries=%d compactions=%d(+%d absorbed) heads=[%s]%s\n"
      seed n_ops n_sessions n_shards !commits !failures !recoveries
      !compactions !compaction_errors
      (String.concat ";" (Array.to_list (Array.map string_of_int heads)))
      (match dir with None -> "" | Some d -> " dir=" ^ d);
    Printf.printf
      "gossip: rounds=%d shipped=%d resyncs=%d skipped-edges=%d\n"
      g.Shard.rounds g.Shard.shipped g.Shard.resyncs g.Shard.skipped_edges
  end;
  match !violations with
  | [] ->
      if not quiet then
        print_endline "shard-soak: all cross-shard invariants hold";
      (0, histories)
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      (1, histories)

(* ------------------------------------------------------------------ *)
(* Check mode: reopen a (possibly killed) persisted soak and diff it   *)
(* against an uncrashed oracle rerun                                   *)
(* ------------------------------------------------------------------ *)

let with_env_chaos (f : unit -> 'a) : 'a =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> f ()
  | Some s ->
      let seed =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            prerr_endline "esm_syncd: CHAOS_SEED must be an integer";
            exit 2
      in
      let rate =
        match Sys.getenv_opt "CHAOS_RATE" with
        | Some r -> float_of_string r
        | None -> 0.05
      in
      let c = Chaos.make ~rate ~seed () in
      let out = Chaos.with_chaos c f in
      Printf.printf "chaos: seed=%d rate=%g injected=%d fallbacks=%d\n" seed
        rate (Chaos.injected c) (Chaos.fallbacks c);
      out

let check ~seed ~ops ~sessions (dir : string) : int =
  (* The oracle: the same soak, uncrashed, persisted into a scratch
     directory.  Chaos schedules are deterministic per (seed, site,
     visit), and persistence itself visits sync.durable.write, so the
     rerun must persist too — only then does its commit sequence match
     the killed run's prefix exactly. *)
  let scratch = dir ^ ".oracle" in
  rm_rf scratch;
  let ocode, oracle =
    with_env_chaos (fun () -> soak ~quiet:true ~dir:scratch ~seed ~ops ~sessions ())
  in
  Store.close oracle;
  if ocode <> 0 then (
    Printf.printf "check: oracle rerun violated soak invariants\n";
    1)
  else
    (* Reopen and diff OUTSIDE chaos: recovery of a valid log must
       succeed unconditionally, and extra chaos visits here would
       desynchronise nothing but still inject spurious faults. *)
    match
      Store.reopen ~name:"employees" ~snapshot_every:8
        ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
        ~codec:default_codec ~dir
        (default_packed ~seed ~size:48)
    with
    | Error e ->
        Printf.printf "check: reopen of %s failed: %s\n" dir (Error.message e);
        1
    | Ok recovered ->
        let h = Store.head_version recovered in
        let oh = Store.head_version oracle in
        let bad = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> bad := s :: !bad) fmt
        in
        if h > oh then
          fail "recovered head %d is beyond the oracle head %d" h oh
        else begin
          (* replay the oracle's first h commits into a fresh in-memory
             store: the recovered views must match that prefix exactly *)
          let reference = default_store ~seed ~size:48 () in
          List.iter
            (fun (e : _ Oplog.entry) ->
              if e.Oplog.version <= h then
                match
                  Store.commit ~session:e.Oplog.session reference e.Oplog.op
                with
                | Ok _ -> ()
                | Error er ->
                    fail "oracle prefix replay failed at %d: %s"
                      e.Oplog.version (Error.message er))
            (Store.entries_since oracle 0);
          if Store.version reference <> h then
            fail "oracle prefix stops at %d, recovered head is %d"
              (Store.version reference) h;
          if not (Table.equal (Store.view_a reference) (Store.view_a recovered))
          then fail "recovered A view diverges from the oracle prefix";
          if not (Table.equal (Store.view_b reference) (Store.view_b recovered))
          then fail "recovered B view diverges from the oracle prefix"
        end;
        Store.close recovered;
        Printf.printf "check: dir=%s recovered=%d oracle=%d\n" dir h oh;
        (match !bad with
        | [] ->
            print_endline "check: recovered store matches the oracle prefix";
            0
        | vs ->
            List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
            1)

(* The sharded recovery check.  The unsharded [check] replays the
   oracle's oplog prefix from zero — impossible once compaction drops
   the prefix, which is the point of the horizon.  So the sharded
   oracle is the recorded per-version view history of an identical
   uncrashed rerun (same seed, same chaos schedule): reopen each killed
   shard outside chaos and the recovered (version, views) must appear
   verbatim in that shard's history. *)
let check_shards ~seed ~ops ~sessions ~shards ~gossip_every ~compact
    (dir : string) : int =
  let scratch = dir ^ ".oracle" in
  rm_rf scratch;
  let ocode, histories =
    with_env_chaos (fun () ->
        shard_soak ~quiet:true ~dir:scratch ~compact ~seed ~ops ~sessions
          ~shards ~gossip_every ())
  in
  if ocode <> 0 then (
    Printf.printf "check: sharded oracle rerun violated soak invariants\n";
    1)
  else begin
    let bad = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
    for j = 0 to shards - 1 do
      match reopen_shard ~seed ~shards j dir with
      | Error e -> fail "shard %d: reopen of %s failed: %s" j dir (Error.message e)
      | Ok st ->
          let h = Store.version st in
          (match Hashtbl.find_opt histories.(j) h with
          | None ->
              fail "shard %d: recovered head %d never committed in the oracle"
                j h
          | Some (va, vb) ->
              if not (Table.equal (Store.view_a st) va) then
                fail "shard %d: recovered A view diverges from the oracle at %d"
                  j h;
              if not (Table.equal (Store.view_b st) vb) then
                fail "shard %d: recovered B view diverges from the oracle at %d"
                  j h);
          Printf.printf "check: shard=%d dir=%s recovered=%d\n" j
            (shard_dir dir j) h;
          Store.close st
    done;
    match !bad with
    | [] ->
        print_endline "check: every recovered shard matches the oracle history";
        0
    | vs ->
        List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
        1
  end

(* ------------------------------------------------------------------ *)
(* Listen mode: the real daemon                                        *)
(* ------------------------------------------------------------------ *)

let run_listen ?dir (addr_s : string) : int =
  match Transport.addr_of_string addr_s with
  | Error e ->
      Printf.eprintf "esm_syncd: %s\n" (Error.message e);
      2
  | Ok addr ->
      let store = default_store ?dir ~seed:11 ~size:48 () in
      let srv = Transport.Server.listen addr (Wire.serve store) in
      Printf.printf "esm_syncd: listening on %s\n%!"
        (Transport.string_of_addr (Transport.Server.addr srv));
      let stop _ = Transport.Server.request_shutdown srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Transport.Server.run srv;
      let st = Transport.Core.stats (Transport.Server.core srv) in
      Printf.printf
        "esm_syncd: drained and stopped (requests=%d executed=%d \
         dedup-hits=%d stale=%d overloads=%d reaped=%d head=%d)\n%!"
        st.Transport.Core.requests st.executed st.dedup_hits st.stale
        st.overloads st.reaped (Store.version store);
      Store.close store;
      0

(* ------------------------------------------------------------------ *)
(* The remote workload shared by --connect and --soak --chaos-net      *)
(* ------------------------------------------------------------------ *)

(* One seeded client workload over a set of remote sessions, with the
   at-most-once accounting the chaos-net soak asserts:

     applied          submits acked [ok] — in the oplog exactly once;
     rejected         submits answered with a definite error/conflict —
                      rolled back, not in the oplog;
     in-doubt         submits that failed transiently: the [resolve]
                      callback (chaos soak: heal the net, resend the
                      same envelope id) settles each one into one of
                      the two buckets above, or counts it unresolved.

   The no-lost/no-dup invariant is then exact: the store head — one
   oplog entry per applied commit — must equal [applied]. *)
type remote_stats = {
  mutable applied : int;
  mutable rejected : int;
  mutable resolved_applied : int;
  mutable resolved_rejected : int;
  mutable unresolved : int;
  mutable read_failures : int;
}

(* [next_id] overrides fresh-row id generation per session (the sharded
   net soak keeps each session's ids in its shard's residue class);
   [on_applied] fires once per acked commit (per-shard accounting);
   [tick] fires after every op (the gossip cadence hook). *)
let remote_workload ?next_id ?(on_applied = fun _ -> ())
    ?(tick = fun _ -> ()) ~seed ~ops:n_ops
    ~(resolve :
       Transport.Remote_session.t -> (Wire.response, Error.t) result option)
    (sessions : Transport.Remote_session.t list) : remote_stats =
  let module R = Transport.Remote_session in
  let r = Workload.rng ~seed in
  let stats =
    {
      applied = 0;
      rejected = 0;
      resolved_applied = 0;
      resolved_rejected = 0;
      unresolved = 0;
      read_failures = 0;
    }
  in
  (* row ids unique across concurrent client processes *)
  let fresh_id = ref (Unix.getpid () * 1_000_000) in
  let gen_id s =
    match next_id with
    | Some f -> f s
    | None ->
        incr fresh_id;
        !fresh_id
  in
  let new_row s side =
    let id = gen_id s in
    let name = Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int id in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        Row.of_list [ Value.Int id; Value.Str name; Value.Str "Engineering" ]
  in
  let seen : (string, Row.t list) Hashtbl.t = Hashtbl.create 16 in
  let sessions = Array.of_list sessions in
  for i = 1 to n_ops do
    let s = sessions.(Workload.int r (Array.length sessions)) in
    (* reads refresh the removal pool; read failures are harmless to the
       accounting (Get/Pull/Ping never touch the oplog) *)
    if i mod 5 = 0 then begin
      match R.view s with
      | Ok (_, rows) -> Hashtbl.replace seen (R.name s) rows
      | Error _ -> stats.read_failures <- stats.read_failures + 1
    end;
    if i mod 11 = 0 then
      (match R.ping s with
      | Ok () -> ()
      | Error _ -> stats.read_failures <- stats.read_failures + 1);
    let adds =
      List.init (1 + Workload.int r 3) (fun _ ->
          Row_delta.Add (new_row s (R.side s)))
    in
    let deltas =
      match Hashtbl.find_opt seen (R.name s) with
      | Some (_ :: _ as rows) when Workload.int r 3 = 0 ->
          Row_delta.Remove (Workload.pick r rows) :: adds
      | _ -> adds
    in
    (match R.submit s (`Batch deltas) with
    | Ok _ ->
        stats.applied <- stats.applied + 1;
        on_applied s
    | Error e when Error.is_transient e -> (
        (* outcome unknown: the last envelope id may or may not have
           committed.  Settle it now — by dedup the resend can never
           double-apply, so the answer is authoritative. *)
        match resolve s with
        | None -> stats.unresolved <- stats.unresolved + 1
        | Some (Ok (Wire.Resp_ok _)) ->
            stats.resolved_applied <- stats.resolved_applied + 1;
            on_applied s
        | Some (Ok _) ->
            stats.resolved_rejected <- stats.resolved_rejected + 1
        | Some (Error _) -> stats.unresolved <- stats.unresolved + 1)
    | Error _ -> stats.rejected <- stats.rejected + 1);
    (if Workload.int r 4 = 0 then
       match R.pull s with
       | Ok _ -> ()
       | Error _ -> stats.read_failures <- stats.read_failures + 1);
    tick i
  done;
  stats

let report_convergence ~label (store : Wire.rstore)
    (sessions : Transport.Remote_session.t list) : int =
  let module R = Transport.Remote_session in
  let head = Store.version store in
  let converged =
    List.fold_left
      (fun n s ->
        match R.pull s with
        | Ok (v, _) when v = head -> n + 1
        | Ok (v, _) ->
            Printf.printf "%s: session %s stopped at %d, head is %d\n" label
              (R.name s) v head;
            n
        | Error e ->
            Printf.printf "%s: session %s final pull failed: %s\n" label
              (R.name s) (Error.message e);
            n)
      0 sessions
  in
  Printf.printf "%s: converged=%d/%d head=%d\n" label converged
    (List.length sessions) head;
  if converged = List.length sessions then 0 else 1

(* ------------------------------------------------------------------ *)
(* Connect mode: the real-socket client driver                         *)
(* ------------------------------------------------------------------ *)

let run_connect ~seed ~ops ~sessions:n_sessions (addr_s : string) : int =
  let module R = Transport.Remote_session in
  match Transport.addr_of_string addr_s with
  | Error e ->
      Printf.eprintf "esm_syncd: %s\n" (Error.message e);
      2
  | Ok addr -> (
      let pid = Unix.getpid () in
      let policy = { (Retry.default ~seed ()) with Retry.attempt_timeout = 5.0 } in
      let bind_one i =
        let name = Printf.sprintf "c%d-%d" pid (i + 1) in
        let side = if i mod 2 = 0 then `A else `B in
        R.bind ~policy (R.tcp_endpoint addr) ~name ~side
      in
      let rec bind_all acc i =
        if i = n_sessions then Ok (List.rev acc)
        else
          match bind_one i with
          | Ok s -> bind_all (s :: acc) (i + 1)
          | Error e ->
              List.iter R.close acc;
              Error (i, e)
      in
      match bind_all [] 0 with
      | Error (i, e) ->
          Printf.eprintf "connect: bind of session %d failed: %s\n" (i + 1)
            (Error.message e);
          1
      | Ok sessions ->
          let stats =
            remote_workload ~seed ~ops ~resolve:(fun s -> Some (R.resolve s))
              sessions
          in
          (* a perfect network: every submit must have a definite
             outcome and every session must reach at least the head we
             observe — other client processes may still be committing,
             so later pulls can legitimately land past it *)
          let head =
            match R.pull (List.hd sessions) with
            | Ok (v, _) -> v
            | Error _ -> -1
          in
          let converged =
            List.fold_left
              (fun n s ->
                match R.pull s with Ok (v, _) when v >= head -> n + 1 | _ -> n)
              0 sessions
          in
          Printf.printf
            "connect: pid=%d sessions=%d ops=%d applied=%d rejected=%d \
             resolved=%d/%d unresolved=%d read-failures=%d head=%d \
             converged=%d/%d\n"
            pid n_sessions ops stats.applied stats.rejected
            stats.resolved_applied
            (stats.resolved_applied + stats.resolved_rejected)
            stats.unresolved stats.read_failures head converged n_sessions;
          List.iter (fun s -> ignore (R.bye s); R.close s) sessions;
          if converged = n_sessions && stats.unresolved = 0 && head >= 0 then 0
          else 1)

(* ------------------------------------------------------------------ *)
(* Chaos-net soak: the same workload through the deterministic         *)
(* fault-injecting network, with exact no-lost/no-dup accounting       *)
(* ------------------------------------------------------------------ *)

let net_soak ~seed ~ops ~sessions:n_sessions ~require_converged () : int =
  let module R = Transport.Remote_session in
  let store = default_store ~seed ~size:48 () in
  let net = Transport.Chaos_net.create (Wire.serve store) in
  let clock = Transport.Chaos_net.clock net in
  let policy =
    {
      (Retry.default ~seed ()) with
      Retry.max_attempts = 8;
      base_delay = 0.02;
      attempt_timeout = 0.5;
      deadline = 60.0;
    }
  in
  (* bind on a quiet net: the interesting chaos is on the data ops *)
  let sessions =
    Chaos.protected (fun () ->
        List.init n_sessions (fun i ->
            let name = Printf.sprintf "n%d" (i + 1) in
            let side = if i mod 2 = 0 then `A else `B in
            match
              R.bind ~policy ~clock (Transport.Chaos_net.endpoint net) ~name
                ~side
            with
            | Ok s -> s
            | Error e ->
                Printf.eprintf "net-soak: bind %s failed: %s\n" name
                  (Error.message e);
                exit 1))
  in
  (* settling an in-doubt commit = the net heals, the client resends the
     same envelope id, the dedup window answers truthfully *)
  let resolve s =
    Transport.Chaos_net.drain net;
    Some (Chaos.protected (fun () -> R.resolve s))
  in
  let stats = remote_workload ~seed ~ops ~resolve sessions in
  Transport.Chaos_net.drain net;
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (* no-lost/no-dup: one oplog entry per acked commit, nothing else *)
  let acked = stats.applied + stats.resolved_applied in
  let head = Store.version store in
  if stats.unresolved > 0 then
    fail "%d submit(s) could not be settled even on a healed network"
      stats.unresolved
  else if head <> acked then
    fail
      "store head %d <> %d acked commits — %s"
      head acked
      (if head > acked then "a retry double-applied" else "an acked commit was lost");
  (* convergence: on the healed net every session pulls to the head *)
  let conv_code =
    Chaos.protected (fun () -> report_convergence ~label:"net-soak" store sessions)
  in
  if require_converged && conv_code <> 0 then
    fail "--require-converged: not all sessions reached the head";
  let n = Transport.Chaos_net.stats net in
  let c = Transport.Core.stats (Transport.Chaos_net.core net) in
  Printf.printf
    "net-soak: seed=%d ops=%d sessions=%d applied=%d rejected=%d \
     resolved=%d+%d unresolved=%d head=%d\n"
    seed ops n_sessions stats.applied stats.rejected stats.resolved_applied
    stats.resolved_rejected stats.unresolved head;
  Printf.printf
    "net: dropped=%d duped=%d reordered=%d truncated=%d delayed=%d \
     halfopen=%d  core: requests=%d executed=%d dedup-hits=%d stale=%d \
     overloads=%d\n"
    n.Transport.Chaos_net.dropped n.duped n.reordered n.truncated n.delayed
    n.half_opened c.Transport.Core.requests c.executed c.dedup_hits c.stale
    c.overloads;
  match !violations with
  | [] ->
      print_endline "net-soak: no lost commits, no duplicated commits";
      0
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      1

(* The sharded chaos-net soak: one chaos network per shard, sessions
   pinned round-robin to shards (each generating fresh ids inside its
   shard's residue class, so its commits land at its pinned store),
   gossip every [gossip_every] ops while the nets are still faulty,
   then heal, quiesce, and assert the cross-shard accounting: every
   shard's head equals its acked commits, and every shard reconstructs
   the authoritative union. *)
let shard_net_soak ~seed ~ops ~sessions:n_sessions ~shards:n_shards
    ~gossip_every ~require_converged () : int =
  let module R = Transport.Remote_session in
  let group = shard_group ~seed ~size:48 ~shards:n_shards () in
  let stores = Array.init n_shards (Shard.store group) in
  let nets =
    Array.map (fun st -> Transport.Chaos_net.create (Wire.serve st)) stores
  in
  let policy =
    {
      (Retry.default ~seed ()) with
      Retry.max_attempts = 8;
      base_delay = 0.02;
      attempt_timeout = 0.5;
      deadline = 60.0;
    }
  in
  let shard_of_name : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let sessions =
    Chaos.protected (fun () ->
        List.init n_sessions (fun k ->
            let shard = k mod n_shards in
            let name = Printf.sprintf "n%d" (k + 1) in
            let side = if k mod 2 = 0 then `A else `B in
            match
              R.bind ~policy
                ~clock:(Transport.Chaos_net.clock nets.(shard))
                (Transport.Chaos_net.endpoint nets.(shard))
                ~name ~side
            with
            | Ok s ->
                Hashtbl.replace shard_of_name name shard;
                s
            | Error e ->
                Printf.eprintf "shard-net-soak: bind %s failed: %s\n" name
                  (Error.message e);
                exit 1))
  in
  let drain_all () = Array.iter Transport.Chaos_net.drain nets in
  let resolve s =
    drain_all ();
    Some (Chaos.protected (fun () -> R.resolve s))
  in
  let acked = Array.make n_shards 0 in
  let on_applied s =
    let j = Hashtbl.find shard_of_name (R.name s) in
    acked.(j) <- acked.(j) + 1
  in
  let idc = ref 0 in
  let next_id s =
    (* unique and congruent: id mod shards = the session's pinned shard *)
    incr idc;
    let j = Hashtbl.find shard_of_name (R.name s) in
    ((100_000 + !idc) * n_shards) + j
  in
  let tick i = if i mod gossip_every = 0 then Shard.gossip_round group in
  let stats =
    remote_workload ~next_id ~on_applied ~tick ~seed ~ops ~resolve sessions
  in
  drain_all ();
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  if stats.unresolved > 0 then
    fail "%d submit(s) could not be settled even on a healed network"
      stats.unresolved
  else
    (* no-lost/no-dup, per shard: sessions are pinned, so each shard's
       head must equal exactly its own sessions' acked commits *)
    Array.iteri
      (fun j st ->
        if Store.version st <> acked.(j) then
          fail "shard %d: head %d <> %d acked commits — %s" j
            (Store.version st) acked.(j)
            (if Store.version st > acked.(j) then "a retry double-applied"
             else "an acked commit was lost"))
      stores;
  (* heal, quiesce, and lift convergence to the cross-shard property *)
  Chaos.protected (fun () ->
      if not (Shard.gossip_until_quiescent ~max_rounds:(8 * n_shards) group)
      then fail "gossip did not quiesce on the healed net";
      if not (Shard.Relational.converged group) then
        fail "shards did not converge to the same entangled whole");
  let conv_code =
    Chaos.protected (fun () ->
        List.fold_left ( + ) 0
          (List.init n_shards (fun j ->
               let mine =
                 List.filter
                   (fun s -> Hashtbl.find shard_of_name (R.name s) = j)
                   sessions
               in
               report_convergence
                 ~label:(Printf.sprintf "shard-net-soak[%d]" j)
                 stores.(j) mine)))
  in
  if require_converged && conv_code <> 0 then
    fail "--require-converged: not all sessions reached their shard's head";
  let g = Shard.stats group in
  let sum f =
    Array.fold_left (fun n net -> n + f (Transport.Chaos_net.stats net)) 0 nets
  in
  Printf.printf
    "shard-net-soak: seed=%d ops=%d sessions=%d shards=%d applied=%d \
     rejected=%d resolved=%d+%d unresolved=%d heads=[%s]\n"
    seed ops n_sessions n_shards stats.applied stats.rejected
    stats.resolved_applied stats.resolved_rejected stats.unresolved
    (String.concat ";"
       (Array.to_list (Array.map (fun st -> string_of_int (Store.version st)) stores)));
  Printf.printf
    "net: dropped=%d duped=%d reordered=%d truncated=%d delayed=%d \
     halfopen=%d  gossip: rounds=%d shipped=%d resyncs=%d skipped-edges=%d\n"
    (sum (fun n -> n.Transport.Chaos_net.dropped))
    (sum (fun n -> n.Transport.Chaos_net.duped))
    (sum (fun n -> n.Transport.Chaos_net.reordered))
    (sum (fun n -> n.Transport.Chaos_net.truncated))
    (sum (fun n -> n.Transport.Chaos_net.delayed))
    (sum (fun n -> n.Transport.Chaos_net.half_opened))
    g.Shard.rounds g.Shard.shipped g.Shard.resyncs g.Shard.skipped_edges;
  match !violations with
  | [] ->
      print_endline
        "shard-net-soak: no lost commits, no duplicated commits, all shards \
         converged";
      0
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let script = ref "" in
  let do_soak = ref false in
  let seed = ref 42 in
  let ops = ref 200 in
  let sessions = ref 4 in
  let dir = ref "" in
  let kill_at = ref 0 in
  let check_dir = ref "" in
  let require_poll_hits = ref false in
  let listen = ref "" in
  let connect = ref "" in
  let chaos_net = ref false in
  let require_converged = ref false in
  let shards = ref 0 in
  let gossip_every = ref 25 in
  let do_compact = ref false in
  let specs =
    [
      ( "--listen",
        Arg.Set_string listen,
        "ADDR serve the store on unix:PATH, HOST:PORT or :PORT" );
      ( "--connect",
        Arg.Set_string connect,
        "ADDR drive remote sessions against a --listen daemon" );
      ( "--chaos-net",
        Arg.Set chaos_net,
        " with --soak: run the workload through the chaos network" );
      ( "--require-converged",
        Arg.Set require_converged,
        " with --chaos-net: exit 1 unless every session reaches the head" );
      ("--script", Arg.Set_string script, "FILE replay a wire-protocol script");
      ("--soak", Arg.Set do_soak, " run the random multi-session soak");
      ("--seed", Arg.Set_int seed, "N soak workload seed (default 42)");
      ("--ops", Arg.Set_int ops, "N soak operation count (default 200)");
      ( "--sessions",
        Arg.Set_int sessions,
        "N soak session count (default 4)" );
      ( "--dir",
        Arg.Set_string dir,
        "D persist the soak store's oplog to directory D" );
      ( "--kill-at",
        Arg.Set_int kill_at,
        "N hard-exit (status 130) after the Nth durable write syscall" );
      ( "--check-dir",
        Arg.Set_string check_dir,
        "D reopen a killed log in D and diff against an uncrashed rerun" );
      ( "--require-poll-hits",
        Arg.Set require_poll_hits,
        " exit 1 if the soak recorded zero session.poll cache hits" );
      ( "--shards",
        Arg.Set_int shards,
        "N partition the soak store across N gossiping shards" );
      ( "--gossip-every",
        Arg.Set_int gossip_every,
        "K run one anti-entropy gossip round every K ops (default 25)" );
      ( "--compact",
        Arg.Set do_compact,
        " with --shards: periodically compact each shard's oplog to its \
         latest durable snapshot" );
    ]
  in
  let usage =
    "esm_syncd (--listen ADDR | --connect ADDR | --script FILE | --soak \
     [--chaos-net] [--shards N] | --check-dir D) [options]"
  in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !shards < 0 || !gossip_every <= 0 then (
    prerr_endline "esm_syncd: --shards must be >= 0, --gossip-every >= 1";
    exit 2);
  if !do_compact && !shards = 0 then (
    prerr_endline "esm_syncd: --compact requires --shards";
    exit 2);
  let code =
    if !listen <> "" then
      run_listen ?dir:(if !dir = "" then None else Some !dir) !listen
    else if !connect <> "" then
      run_connect ~seed:!seed ~ops:!ops ~sessions:!sessions !connect
    else if !do_soak && !chaos_net then
      with_env_chaos (fun () ->
          if !shards > 0 then
            shard_net_soak ~seed:!seed ~ops:!ops ~sessions:!sessions
              ~shards:!shards ~gossip_every:!gossip_every
              ~require_converged:!require_converged ()
          else
            net_soak ~seed:!seed ~ops:!ops ~sessions:!sessions
              ~require_converged:!require_converged ())
    else if !script <> "" then with_env_chaos (fun () -> run_script !script)
    else if !check_dir <> "" then
      if !shards > 0 then
        check_shards ~seed:!seed ~ops:!ops ~sessions:!sessions
          ~shards:!shards ~gossip_every:!gossip_every ~compact:!do_compact
          !check_dir
      else check ~seed:!seed ~ops:!ops ~sessions:!sessions !check_dir
    else if !do_soak && !shards > 0 then begin
      if !kill_at > 0 then begin
        if !dir = "" then (
          prerr_endline "esm_syncd: --kill-at requires --dir";
          exit 2);
        Durable_log.set_kill_at (Some !kill_at)
      end;
      let code, _histories =
        with_env_chaos
          (shard_soak
             ?dir:(if !dir = "" then None else Some !dir)
             ~compact:!do_compact ~seed:!seed ~ops:!ops ~sessions:!sessions
             ~shards:!shards ~gossip_every:!gossip_every)
      in
      code
    end
    else if !do_soak then begin
      if !kill_at > 0 then begin
        if !dir = "" then (
          prerr_endline "esm_syncd: --kill-at requires --dir";
          exit 2);
        Durable_log.set_kill_at (Some !kill_at)
      end;
      let code, store =
        with_env_chaos
          (soak
             ?dir:(if !dir = "" then None else Some !dir)
             ~seed:!seed ~ops:!ops ~sessions:!sessions)
      in
      Store.close store;
      let poll_hits, _ = Esm_incr.Stats.counts "session.poll" in
      if !require_poll_hits && poll_hits = 0 then begin
        print_endline
          "VIOLATION: --require-poll-hits: the soak recorded zero \
           session.poll cache hits (the memoized poll path was bypassed)";
        max code 1
      end
      else code
    end
    else (
      prerr_endline usage;
      2)
  in
  exit code
