(* esm_syncd: the sync engine driver — a deterministic in-process
   "daemon" serving concurrent sessions against a replicated relational
   store (Esm_sync over the employees where|select lens).

   Modes:

     esm_syncd --script FILE
       Replay a wire-protocol script: each non-empty, non-# line is
       "@<session> <request>" in the grammar of Esm_sync.Wire; lines
       are processed in order (the script IS the schedule, so runs are
       reproducible), and each request/response pair is printed.
       Exit 2 on malformed script lines.

     esm_syncd --soak [--seed N] [--ops N] [--sessions N]
              [--dir D] [--kill-at N]
       Run a seeded random multi-session workload and check the sync
       engine's three invariants:
         recovery    crash+replay reproduces the exact pre-crash views;
         batching    a batched delta commit equals the same deltas
                     committed one at a time (oracle replay);
         convergence every session pulls to the store head.
       Exit 1 on any violation.  With --dir the store persists its
       oplog to D (write-ahead, Fsync_every 8); with --kill-at N the
       process hard-exits (status 130, no flushing, mid-record when N
       lands there) after the Nth durable write syscall — the
       crash-injection half of the durability story.

     esm_syncd --check-dir D [--seed N] [--ops N] [--sessions N]
       The recovery half: rerun the identical soak (same seed, same
       CHAOS_SEED schedule — chaos visits are counted per site, so the
       uncrashed rerun performs the same commit sequence) into a
       scratch directory D.oracle, then reopen the killed log in D
       *outside* chaos and diff the recovered store against the
       oracle's prefix at the recovered version.  Exit 1 on any
       divergence or on unrecoverable corruption.

   All modes honour CHAOS_SEED (and optional CHAOS_RATE): fault
   injection at the sync chaos sites (append/replay/rebase/durable
   write) plus the library-wide ones, with the injection/fallback
   counts reported. *)

open Esm_core
open Esm_relational
open Esm_sync

let eng_lens =
  Query.lens_of_string ~schema:Workload.employees_schema ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let default_codec =
  let schema_b =
    Table.schema (Esm_lens.Lens.get eng_lens (Workload.employees ~seed:1 ~size:1))
  in
  Wire.durable_op_codec ~schema_a:Workload.employees_schema ~schema_b

let default_packed ~seed ~size =
  Concrete.packed_of_lens ~vwb:false
    ~init:(Workload.employees ~seed ~size)
    ~eq_state:Table.equal eng_lens

let default_store ?dir ~seed ~size () : Wire.rstore =
  let persist =
    Option.map
      (fun dir ->
        Store.persist ~fsync:(Durable_log.Fsync_every 8) ~dir default_codec)
      dir
  in
  Store.of_packed ~name:"employees" ~snapshot_every:8
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all ?persist
    (default_packed ~seed ~size)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Script mode                                                         *)
(* ------------------------------------------------------------------ *)

let run_script (path : string) : int =
  let srv = Wire.serve (default_store ~seed:11 ~size:24 ()) in
  let ic = open_in path in
  let bad = ref false in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         if line.[0] <> '@' then (
           Printf.printf "!! line %d: expected '@<session> <request>'\n"
             !lineno;
           bad := true)
         else
           let body = String.sub line 1 (String.length line - 1) in
           let session, req =
             match String.index_opt body ' ' with
             | None -> (body, "")
             | Some i ->
                 ( String.sub body 0 i,
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) )
           in
           Printf.printf "@%s> %s\n" session req;
           match Wire.handle_line srv ~session req with
           | resp -> Printf.printf "@%s< %s\n" session resp
           | exception Error.Bx_error e when e.Error.kind = Error.Parse ->
               Printf.printf "!! line %d: %s\n" !lineno (Error.message e);
               bad := true
     done
   with End_of_file -> close_in ic);
  if !bad then 2 else 0

(* ------------------------------------------------------------------ *)
(* Soak mode                                                           *)
(* ------------------------------------------------------------------ *)

let soak ?dir ?(quiet = false) ~seed ~ops:n_ops ~sessions:n_sessions () :
    int * Wire.rstore =
  let store = default_store ?dir ~seed ~size:48 () in
  let r = Workload.rng ~seed in
  let sessions =
    List.init n_sessions (fun i ->
        let side = if i mod 2 = 0 then `A else `B in
        Session.bind store ~name:(Printf.sprintf "s%d" (i + 1)) ~side)
  in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let fresh_id = ref 100_000 in
  let new_row side =
    incr fresh_id;
    let name =
      Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id
    in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        (* view rows must satisfy the lens predicate to be puttable *)
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let random_deltas (sess : Wire.rsession) =
    let view = match Session.view sess with `A t | `B t -> t in
    let rows = Table.rows view in
    let n = 1 + Workload.int r 4 in
    List.init n (fun _ ->
        if rows = [] || Workload.int r 3 = 0 then
          Row_delta.Add (new_row (Session.side sess))
        else Row_delta.Remove (Workload.pick r rows))
  in
  let commits = ref 0 and failures = ref 0 and recoveries = ref 0 in
  let crash_every = max 5 (n_ops / 8) in
  for i = 1 to n_ops do
    let sess = Workload.pick r sessions in
    let op =
      match Session.side sess with
      | `A -> Store.Batch_a (random_deltas sess)
      | `B -> Store.Batch_b (random_deltas sess)
    in
    (match Session.submit_rebase sess op with
    | Ok _ -> incr commits
    | Error e when e.Error.kind = Error.Conflict ->
        (* submit_rebase pulled to head first; a conflict here means the
           optimistic check is broken *)
        fail "op %d: conflict after rebase: %s" i (Error.message e)
    | Error _ ->
        (* a failing put (or injected fault) rolls back and appends
           nothing — legitimate under chaos, checked by recovery below *)
        incr failures);
    (* the poll traffic: the session that just synced re-polls (the
       overwhelmingly common "nothing changed" case — must hit the
       short-circuit), and a random bystander polls too (hit or miss
       depending on whether it saw the commit) *)
    ignore (Session.pull sess);
    ignore (Session.pull (Workload.pick r sessions));
    if i mod crash_every = 0 then (
      (* recovery invariant: crash + replay = the uncrashed store *)
      let va = Store.view_a store and vb = Store.view_b store in
      let v = Store.version store in
      Store.crash store;
      Store.recover store;
      incr recoveries;
      if Store.version store <> v then
        fail "op %d: recovery stopped at version %d, expected %d" i
          (Store.version store) v;
      if not (Table.equal (Store.view_a store) va) then
        fail "op %d: recovered A view differs from pre-crash" i;
      if not (Table.equal (Store.view_b store) vb) then
        fail "op %d: recovered B view differs from pre-crash" i)
  done;
  (* batching invariant: replaying the oplog with every batch split
     into one-at-a-time delta commits lands on the same views *)
  Chaos.protected (fun () ->
      let oracle = default_store ~seed ~size:48 () in
      let commit session op =
        match Store.commit ~session oracle op with
        | Ok _ -> ()
        | Error e -> fail "oracle replay commit failed: %s" (Error.message e)
      in
      List.iter
        (fun (e : _ Oplog.entry) ->
          match e.Oplog.op with
          | Store.Batch_a ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_a [ d ])) ds
          | Store.Batch_b ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_b [ d ])) ds
          | op -> commit e.Oplog.session op)
        (Store.entries_since store 0);
      if not (Table.equal (Store.view_a oracle) (Store.view_a store)) then
        fail "batched A view differs from one-at-a-time oracle";
      if not (Table.equal (Store.view_b oracle) (Store.view_b store)) then
        fail "batched B view differs from one-at-a-time oracle");
  (* convergence invariant: every session pulls to the store head *)
  List.iter
    (fun sess ->
      ignore (Session.pull sess);
      if Session.base sess <> Store.version store then
        fail "session %s converged at %d, store head is %d"
          (Session.name sess) (Session.base sess) (Store.version store))
    sessions;
  if not quiet then begin
    Printf.printf
      "soak: seed=%d ops=%d sessions=%d commits=%d failed=%d recoveries=%d \
       head=%d%s\n"
      seed n_ops n_sessions !commits !failures !recoveries
      (Store.version store)
      (match dir with None -> "" | Some d -> " dir=" ^ d);
    (* the incremental layer's poll statistics: the CI soak asserts a
       nonzero hit count (--require-poll-hits), so the caches are
       provably exercised, not silently bypassed *)
    let ph, pm = Esm_incr.Stats.counts "session.poll" in
    let vh, vm = Esm_incr.Stats.counts "store.view" in
    let rate h m = if h + m = 0 then 0.0 else 100.0 *. float h /. float (h + m) in
    Printf.printf
      "poll: hits=%d misses=%d hit-rate=%.1f%%  store-view: hits=%d \
       misses=%d hit-rate=%.1f%%\n"
      ph pm (rate ph pm) vh vm (rate vh vm)
  end;
  match !violations with
  | [] ->
      if not quiet then print_endline "soak: all invariants hold";
      (0, store)
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      (1, store)

(* ------------------------------------------------------------------ *)
(* Check mode: reopen a (possibly killed) persisted soak and diff it   *)
(* against an uncrashed oracle rerun                                   *)
(* ------------------------------------------------------------------ *)

let with_env_chaos (f : unit -> 'a) : 'a =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> f ()
  | Some s ->
      let seed =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            prerr_endline "esm_syncd: CHAOS_SEED must be an integer";
            exit 2
      in
      let rate =
        match Sys.getenv_opt "CHAOS_RATE" with
        | Some r -> float_of_string r
        | None -> 0.05
      in
      let c = Chaos.make ~rate ~seed () in
      let out = Chaos.with_chaos c f in
      Printf.printf "chaos: seed=%d rate=%g injected=%d fallbacks=%d\n" seed
        rate (Chaos.injected c) (Chaos.fallbacks c);
      out

let check ~seed ~ops ~sessions (dir : string) : int =
  (* The oracle: the same soak, uncrashed, persisted into a scratch
     directory.  Chaos schedules are deterministic per (seed, site,
     visit), and persistence itself visits sync.durable.write, so the
     rerun must persist too — only then does its commit sequence match
     the killed run's prefix exactly. *)
  let scratch = dir ^ ".oracle" in
  rm_rf scratch;
  let ocode, oracle =
    with_env_chaos (fun () -> soak ~quiet:true ~dir:scratch ~seed ~ops ~sessions ())
  in
  Store.close oracle;
  if ocode <> 0 then (
    Printf.printf "check: oracle rerun violated soak invariants\n";
    1)
  else
    (* Reopen and diff OUTSIDE chaos: recovery of a valid log must
       succeed unconditionally, and extra chaos visits here would
       desynchronise nothing but still inject spurious faults. *)
    match
      Store.reopen ~name:"employees" ~snapshot_every:8
        ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
        ~codec:default_codec ~dir
        (default_packed ~seed ~size:48)
    with
    | Error e ->
        Printf.printf "check: reopen of %s failed: %s\n" dir (Error.message e);
        1
    | Ok recovered ->
        let h = Store.head_version recovered in
        let oh = Store.head_version oracle in
        let bad = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> bad := s :: !bad) fmt
        in
        if h > oh then
          fail "recovered head %d is beyond the oracle head %d" h oh
        else begin
          (* replay the oracle's first h commits into a fresh in-memory
             store: the recovered views must match that prefix exactly *)
          let reference = default_store ~seed ~size:48 () in
          List.iter
            (fun (e : _ Oplog.entry) ->
              if e.Oplog.version <= h then
                match
                  Store.commit ~session:e.Oplog.session reference e.Oplog.op
                with
                | Ok _ -> ()
                | Error er ->
                    fail "oracle prefix replay failed at %d: %s"
                      e.Oplog.version (Error.message er))
            (Store.entries_since oracle 0);
          if Store.version reference <> h then
            fail "oracle prefix stops at %d, recovered head is %d"
              (Store.version reference) h;
          if not (Table.equal (Store.view_a reference) (Store.view_a recovered))
          then fail "recovered A view diverges from the oracle prefix";
          if not (Table.equal (Store.view_b reference) (Store.view_b recovered))
          then fail "recovered B view diverges from the oracle prefix"
        end;
        Store.close recovered;
        Printf.printf "check: dir=%s recovered=%d oracle=%d\n" dir h oh;
        (match !bad with
        | [] ->
            print_endline "check: recovered store matches the oracle prefix";
            0
        | vs ->
            List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
            1)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let script = ref "" in
  let do_soak = ref false in
  let seed = ref 42 in
  let ops = ref 200 in
  let sessions = ref 4 in
  let dir = ref "" in
  let kill_at = ref 0 in
  let check_dir = ref "" in
  let require_poll_hits = ref false in
  let specs =
    [
      ("--script", Arg.Set_string script, "FILE replay a wire-protocol script");
      ("--soak", Arg.Set do_soak, " run the random multi-session soak");
      ("--seed", Arg.Set_int seed, "N soak workload seed (default 42)");
      ("--ops", Arg.Set_int ops, "N soak operation count (default 200)");
      ( "--sessions",
        Arg.Set_int sessions,
        "N soak session count (default 4)" );
      ( "--dir",
        Arg.Set_string dir,
        "D persist the soak store's oplog to directory D" );
      ( "--kill-at",
        Arg.Set_int kill_at,
        "N hard-exit (status 130) after the Nth durable write syscall" );
      ( "--check-dir",
        Arg.Set_string check_dir,
        "D reopen a killed log in D and diff against an uncrashed rerun" );
      ( "--require-poll-hits",
        Arg.Set require_poll_hits,
        " exit 1 if the soak recorded zero session.poll cache hits" );
    ]
  in
  let usage = "esm_syncd (--script FILE | --soak | --check-dir D) [options]" in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let code =
    if !script <> "" then with_env_chaos (fun () -> run_script !script)
    else if !check_dir <> "" then
      check ~seed:!seed ~ops:!ops ~sessions:!sessions !check_dir
    else if !do_soak then begin
      if !kill_at > 0 then begin
        if !dir = "" then (
          prerr_endline "esm_syncd: --kill-at requires --dir";
          exit 2);
        Durable_log.set_kill_at (Some !kill_at)
      end;
      let code, store =
        with_env_chaos
          (soak
             ?dir:(if !dir = "" then None else Some !dir)
             ~seed:!seed ~ops:!ops ~sessions:!sessions)
      in
      Store.close store;
      let poll_hits, _ = Esm_incr.Stats.counts "session.poll" in
      if !require_poll_hits && poll_hits = 0 then begin
        print_endline
          "VIOLATION: --require-poll-hits: the soak recorded zero \
           session.poll cache hits (the memoized poll path was bypassed)";
        max code 1
      end
      else code
    end
    else (
      prerr_endline usage;
      2)
  in
  exit code
