(* esm_syncd: the sync engine driver — a deterministic in-process
   "daemon" serving concurrent sessions against a replicated relational
   store (Esm_sync over the employees where|select lens).

   Two modes:

     esm_syncd --script FILE
       Replay a wire-protocol script: each non-empty, non-# line is
       "@<session> <request>" in the grammar of Esm_sync.Wire; lines
       are processed in order (the script IS the schedule, so runs are
       reproducible), and each request/response pair is printed.
       Exit 2 on malformed script lines.

     esm_syncd --soak [--seed N] [--ops N] [--sessions N]
       Run a seeded random multi-session workload and check the sync
       engine's three invariants:
         recovery    crash+replay reproduces the exact pre-crash views;
         batching    a batched delta commit equals the same deltas
                     committed one at a time (oracle replay);
         convergence every session pulls to the store head.
       Exit 1 on any violation.

   Both modes honour CHAOS_SEED (and optional CHAOS_RATE): fault
   injection at the sync chaos sites (append/replay/rebase) plus the
   library-wide ones, with the injection/fallback counts reported. *)

open Esm_core
open Esm_relational
open Esm_sync

let default_store ~seed ~size () : Wire.rstore =
  let lens =
    Query.lens_of_string ~schema:Workload.employees_schema ~key:[ "id" ]
      {|employees | where dept = "Engineering" | select id, name, dept|}
  in
  let packed =
    Concrete.packed_of_lens ~vwb:false
      ~init:(Workload.employees ~seed ~size)
      ~eq_state:Table.equal lens
  in
  Store.of_packed ~name:"employees" ~snapshot_every:8
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all packed

(* ------------------------------------------------------------------ *)
(* Script mode                                                         *)
(* ------------------------------------------------------------------ *)

let run_script (path : string) : int =
  let srv = Wire.serve (default_store ~seed:11 ~size:24 ()) in
  let ic = open_in path in
  let bad = ref false in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         if line.[0] <> '@' then (
           Printf.printf "!! line %d: expected '@<session> <request>'\n"
             !lineno;
           bad := true)
         else
           let body = String.sub line 1 (String.length line - 1) in
           let session, req =
             match String.index_opt body ' ' with
             | None -> (body, "")
             | Some i ->
                 ( String.sub body 0 i,
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) )
           in
           Printf.printf "@%s> %s\n" session req;
           match Wire.handle_line srv ~session req with
           | resp -> Printf.printf "@%s< %s\n" session resp
           | exception Error.Bx_error e when e.Error.kind = Error.Parse ->
               Printf.printf "!! line %d: %s\n" !lineno (Error.message e);
               bad := true
     done
   with End_of_file -> close_in ic);
  if !bad then 2 else 0

(* ------------------------------------------------------------------ *)
(* Soak mode                                                           *)
(* ------------------------------------------------------------------ *)

let soak ~seed ~ops:n_ops ~sessions:n_sessions () : int =
  let store = default_store ~seed ~size:48 () in
  let r = Workload.rng ~seed in
  let sessions =
    List.init n_sessions (fun i ->
        let side = if i mod 2 = 0 then `A else `B in
        Session.bind store ~name:(Printf.sprintf "s%d" (i + 1)) ~side)
  in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let fresh_id = ref 100_000 in
  let new_row side =
    incr fresh_id;
    let name =
      Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id
    in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        (* view rows must satisfy the lens predicate to be puttable *)
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let random_deltas (sess : Wire.rsession) =
    let view = match Session.view sess with `A t | `B t -> t in
    let rows = Table.rows view in
    let n = 1 + Workload.int r 4 in
    List.init n (fun _ ->
        if rows = [] || Workload.int r 3 = 0 then
          Row_delta.Add (new_row (Session.side sess))
        else Row_delta.Remove (Workload.pick r rows))
  in
  let commits = ref 0 and failures = ref 0 and recoveries = ref 0 in
  let crash_every = max 5 (n_ops / 8) in
  for i = 1 to n_ops do
    let sess = Workload.pick r sessions in
    let op =
      match Session.side sess with
      | `A -> Store.Batch_a (random_deltas sess)
      | `B -> Store.Batch_b (random_deltas sess)
    in
    (match Session.submit_rebase sess op with
    | Ok _ -> incr commits
    | Error e when e.Error.kind = Error.Conflict ->
        (* submit_rebase pulled to head first; a conflict here means the
           optimistic check is broken *)
        fail "op %d: conflict after rebase: %s" i (Error.message e)
    | Error _ ->
        (* a failing put (or injected fault) rolls back and appends
           nothing — legitimate under chaos, checked by recovery below *)
        incr failures);
    if i mod crash_every = 0 then (
      (* recovery invariant: crash + replay = the uncrashed store *)
      let va = Store.view_a store and vb = Store.view_b store in
      let v = Store.version store in
      Store.crash store;
      Store.recover store;
      incr recoveries;
      if Store.version store <> v then
        fail "op %d: recovery stopped at version %d, expected %d" i
          (Store.version store) v;
      if not (Table.equal (Store.view_a store) va) then
        fail "op %d: recovered A view differs from pre-crash" i;
      if not (Table.equal (Store.view_b store) vb) then
        fail "op %d: recovered B view differs from pre-crash" i)
  done;
  (* batching invariant: replaying the oplog with every batch split
     into one-at-a-time delta commits lands on the same views *)
  Chaos.protected (fun () ->
      let oracle = default_store ~seed ~size:48 () in
      let commit session op =
        match Store.commit ~session oracle op with
        | Ok _ -> ()
        | Error e -> fail "oracle replay commit failed: %s" (Error.message e)
      in
      List.iter
        (fun (e : _ Oplog.entry) ->
          match e.Oplog.op with
          | Store.Batch_a ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_a [ d ])) ds
          | Store.Batch_b ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_b [ d ])) ds
          | op -> commit e.Oplog.session op)
        (Store.entries_since store 0);
      if not (Table.equal (Store.view_a oracle) (Store.view_a store)) then
        fail "batched A view differs from one-at-a-time oracle";
      if not (Table.equal (Store.view_b oracle) (Store.view_b store)) then
        fail "batched B view differs from one-at-a-time oracle");
  (* convergence invariant: every session pulls to the store head *)
  List.iter
    (fun sess ->
      ignore (Session.pull sess);
      if Session.base sess <> Store.version store then
        fail "session %s converged at %d, store head is %d"
          (Session.name sess) (Session.base sess) (Store.version store))
    sessions;
  Printf.printf
    "soak: seed=%d ops=%d sessions=%d commits=%d failed=%d recoveries=%d \
     head=%d\n"
    seed n_ops n_sessions !commits !failures !recoveries
    (Store.version store);
  match !violations with
  | [] ->
      print_endline "soak: all invariants hold";
      0
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let with_env_chaos (f : unit -> int) : int =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> f ()
  | Some s ->
      let seed =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            prerr_endline "esm_syncd: CHAOS_SEED must be an integer";
            exit 2
      in
      let rate =
        match Sys.getenv_opt "CHAOS_RATE" with
        | Some r -> float_of_string r
        | None -> 0.05
      in
      let c = Chaos.make ~rate ~seed () in
      let code = Chaos.with_chaos c f in
      Printf.printf "chaos: seed=%d rate=%g injected=%d fallbacks=%d\n" seed
        rate (Chaos.injected c) (Chaos.fallbacks c);
      code

let () =
  let script = ref "" in
  let do_soak = ref false in
  let seed = ref 42 in
  let ops = ref 200 in
  let sessions = ref 4 in
  let specs =
    [
      ("--script", Arg.Set_string script, "FILE replay a wire-protocol script");
      ("--soak", Arg.Set do_soak, " run the random multi-session soak");
      ("--seed", Arg.Set_int seed, "N soak workload seed (default 42)");
      ("--ops", Arg.Set_int ops, "N soak operation count (default 200)");
      ( "--sessions",
        Arg.Set_int sessions,
        "N soak session count (default 4)" );
    ]
  in
  let usage = "esm_syncd (--script FILE | --soak) [options]" in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let code =
    if !script <> "" then with_env_chaos (fun () -> run_script !script)
    else if !do_soak then
      with_env_chaos (soak ~seed:!seed ~ops:!ops ~sessions:!sessions)
    else (
      prerr_endline usage;
      2)
  in
  exit code
