(* esm_syncd: the sync engine driver — a deterministic in-process
   "daemon" serving concurrent sessions against a replicated relational
   store (Esm_sync over the employees where|select lens).

   Modes:

     esm_syncd --listen ADDR [--dir D]
       A real daemon: serve the store over length-framed wire messages
       on a Unix-domain ("unix:PATH") or TCP ("HOST:PORT", ":PORT")
       socket, multiplexing every connection over one select loop.
       SIGTERM/SIGINT request a clean drain: stop accepting, flush
       queued responses, print the transport stats, exit 0.

     esm_syncd --connect ADDR [--sessions N] [--ops N] [--seed N]
       The matching client driver: bind N remote sessions (names are
       pid-unique, so several --connect processes can share a server),
       round-robin a seeded workload of batch commits, pulls, views and
       pings across them with full retry/idempotency, then pull each
       session to the head and report convergence.  Exit 1 if any
       session failed or did not converge.

     esm_syncd --soak --chaos-net [--seed N] [--ops N] [--sessions N]
              [--require-converged]
       Run the remote-session workload through the deterministic chaos
       network (sites net.drop/dup/reorder/truncate/delay/halfopen,
       driven by CHAOS_SEED like every other site) against the real
       server core, and check the transport's own invariants:
         no-lost/no-dup  the store head equals the number of commits
                         the clients got (or resolved) an ack for —
                         retries across half-open connections are
                         deduplicated server-side, never double-applied,
                         and every acked commit is really in the log;
         convergence     after the net heals, every session pulls to
                         the store head (enforced when
                         --require-converged is given).
       Exit 1 on any violation.

     esm_syncd --script FILE
       Replay a wire-protocol script: each non-empty, non-# line is
       "@<session> <request>" in the grammar of Esm_sync.Wire; lines
       are processed in order (the script IS the schedule, so runs are
       reproducible), and each request/response pair is printed.
       Exit 2 on malformed script lines.

       A FILE ending in .esmql is instead parsed as an ESMQL script
       (see docs/QUERY.md), compiled through the law-level gate and
       executed against the daemon's default store.  Exit 2 on a
       parse/compile rejection, 1 on a failed execution step.

     esm_syncd --soak [--seed N] [--ops N] [--sessions N]
              [--dir D] [--kill-at N]
       Run a seeded random multi-session workload and check the sync
       engine's three invariants:
         recovery    crash+replay reproduces the exact pre-crash views;
         batching    a batched delta commit equals the same deltas
                     committed one at a time (oracle replay);
         convergence every session pulls to the store head.
       Exit 1 on any violation.  With --dir the store persists its
       oplog to D (write-ahead, Fsync_every 8); with --kill-at N the
       process hard-exits (status 130, no flushing, mid-record when N
       lands there) after the Nth durable write syscall — the
       crash-injection half of the durability story.

     esm_syncd --check-dir D [--seed N] [--ops N] [--sessions N]
       The recovery half: rerun the identical soak (same seed, same
       CHAOS_SEED schedule — chaos visits are counted per site, so the
       uncrashed rerun performs the same commit sequence) into a
       scratch directory D.oracle, then reopen the killed log in D
       *outside* chaos and diff the recovered store against the
       oracle's prefix at the recovered version.  Exit 1 on any
       divergence or on unrecoverable corruption.

   All modes honour CHAOS_SEED (and optional CHAOS_RATE): fault
   injection at the sync chaos sites (append/replay/rebase/durable
   write) plus the library-wide ones, with the injection/fallback
   counts reported. *)

open Esm_core
open Esm_relational
open Esm_sync

let eng_lens =
  Query.lens_of_string ~schema:Workload.employees_schema ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let default_codec =
  let schema_b =
    Table.schema (Esm_lens.Lens.get eng_lens (Workload.employees ~seed:1 ~size:1))
  in
  Wire.durable_op_codec ~schema_a:Workload.employees_schema ~schema_b

let default_packed ~seed ~size =
  Concrete.packed_of_lens ~vwb:false
    ~init:(Workload.employees ~seed ~size)
    ~eq_state:Table.equal eng_lens

let default_store ?dir ~seed ~size () : Wire.rstore =
  let persist =
    Option.map
      (fun dir ->
        Store.persist ~fsync:(Durable_log.Fsync_every 8) ~dir default_codec)
      dir
  in
  Store.of_packed ~name:"employees" ~snapshot_every:8
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all ?persist
    (default_packed ~seed ~size)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Script mode                                                         *)
(* ------------------------------------------------------------------ *)

(* An .esmql script runs through the query front-end against the same
   default employees store the wire scripts exercise: parse, gate
   (strict unless the script says otherwise), execute on the store
   backend.  Parse/compile rejections exit 2 like malformed wire
   lines; a failed execution step exits 1. *)
let run_esmql_script (path : string) : int =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let bases =
    [
      {
        Esm_ql.Check.bname = "employees";
        bschema = Workload.employees_schema;
        bkey = [ "id" ];
        binit = Workload.employees ~seed:11 ~size:24;
      };
    ]
  in
  match Esm_ql.Parser.parse (read_file path) with
  | Error e ->
      Printf.printf "!! %s\n" (Esm_core.Error.message e);
      2
  | Ok script -> (
      match Esm_ql.Check.compile ~bases script with
      | Error e ->
          Printf.printf "!! %s\n" (Esm_core.Error.message e);
          2
      | Ok compiled ->
          let trace = Esm_ql.Exec.run ~kind:Esm_ql.Backend.Store compiled in
          Format.printf "%a@." Esm_ql.Exec.pp trace;
          if trace.Esm_ql.Exec.ok then 0 else 1)

let run_script (path : string) : int =
  if Filename.check_suffix path ".esmql" then run_esmql_script path
  else
  let srv = Wire.serve (default_store ~seed:11 ~size:24 ()) in
  let ic = open_in path in
  let bad = ref false in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         if line.[0] <> '@' then (
           Printf.printf "!! line %d: expected '@<session> <request>'\n"
             !lineno;
           bad := true)
         else
           let body = String.sub line 1 (String.length line - 1) in
           let session, req =
             match String.index_opt body ' ' with
             | None -> (body, "")
             | Some i ->
                 ( String.sub body 0 i,
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) )
           in
           Printf.printf "@%s> %s\n" session req;
           match Wire.handle_line srv ~session req with
           | resp -> Printf.printf "@%s< %s\n" session resp
           | exception Error.Bx_error e when e.Error.kind = Error.Parse ->
               Printf.printf "!! line %d: %s\n" !lineno (Error.message e);
               bad := true
     done
   with End_of_file -> close_in ic);
  if !bad then 2 else 0

(* ------------------------------------------------------------------ *)
(* Soak mode                                                           *)
(* ------------------------------------------------------------------ *)

let soak ?dir ?(quiet = false) ~seed ~ops:n_ops ~sessions:n_sessions () :
    int * Wire.rstore =
  let store = default_store ?dir ~seed ~size:48 () in
  let r = Workload.rng ~seed in
  let sessions =
    List.init n_sessions (fun i ->
        let side = if i mod 2 = 0 then `A else `B in
        Session.bind store ~name:(Printf.sprintf "s%d" (i + 1)) ~side)
  in
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let fresh_id = ref 100_000 in
  let new_row side =
    incr fresh_id;
    let name =
      Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id
    in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        (* view rows must satisfy the lens predicate to be puttable *)
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let random_deltas (sess : Wire.rsession) =
    let view = match Session.view sess with `A t | `B t -> t in
    let rows = Table.rows view in
    let n = 1 + Workload.int r 4 in
    List.init n (fun _ ->
        if rows = [] || Workload.int r 3 = 0 then
          Row_delta.Add (new_row (Session.side sess))
        else Row_delta.Remove (Workload.pick r rows))
  in
  let commits = ref 0 and failures = ref 0 and recoveries = ref 0 in
  let crash_every = max 5 (n_ops / 8) in
  for i = 1 to n_ops do
    let sess = Workload.pick r sessions in
    let op =
      match Session.side sess with
      | `A -> Store.Batch_a (random_deltas sess)
      | `B -> Store.Batch_b (random_deltas sess)
    in
    (match Session.submit_rebase sess op with
    | Ok _ -> incr commits
    | Error e when e.Error.kind = Error.Conflict ->
        (* submit_rebase pulled to head first; a conflict here means the
           optimistic check is broken *)
        fail "op %d: conflict after rebase: %s" i (Error.message e)
    | Error _ ->
        (* a failing put (or injected fault) rolls back and appends
           nothing — legitimate under chaos, checked by recovery below *)
        incr failures);
    (* the poll traffic: the session that just synced re-polls (the
       overwhelmingly common "nothing changed" case — must hit the
       short-circuit), and a random bystander polls too (hit or miss
       depending on whether it saw the commit) *)
    ignore (Session.pull sess);
    ignore (Session.pull (Workload.pick r sessions));
    if i mod crash_every = 0 then (
      (* recovery invariant: crash + replay = the uncrashed store *)
      let va = Store.view_a store and vb = Store.view_b store in
      let v = Store.version store in
      Store.crash store;
      Store.recover store;
      incr recoveries;
      if Store.version store <> v then
        fail "op %d: recovery stopped at version %d, expected %d" i
          (Store.version store) v;
      if not (Table.equal (Store.view_a store) va) then
        fail "op %d: recovered A view differs from pre-crash" i;
      if not (Table.equal (Store.view_b store) vb) then
        fail "op %d: recovered B view differs from pre-crash" i)
  done;
  (* batching invariant: replaying the oplog with every batch split
     into one-at-a-time delta commits lands on the same views *)
  Chaos.protected (fun () ->
      let oracle = default_store ~seed ~size:48 () in
      let commit session op =
        match Store.commit ~session oracle op with
        | Ok _ -> ()
        | Error e -> fail "oracle replay commit failed: %s" (Error.message e)
      in
      List.iter
        (fun (e : _ Oplog.entry) ->
          match e.Oplog.op with
          | Store.Batch_a ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_a [ d ])) ds
          | Store.Batch_b ds ->
              List.iter (fun d -> commit e.Oplog.session (Store.Batch_b [ d ])) ds
          | op -> commit e.Oplog.session op)
        (Store.entries_since store 0);
      if not (Table.equal (Store.view_a oracle) (Store.view_a store)) then
        fail "batched A view differs from one-at-a-time oracle";
      if not (Table.equal (Store.view_b oracle) (Store.view_b store)) then
        fail "batched B view differs from one-at-a-time oracle");
  (* convergence invariant: every session pulls to the store head *)
  List.iter
    (fun sess ->
      ignore (Session.pull sess);
      if Session.base sess <> Store.version store then
        fail "session %s converged at %d, store head is %d"
          (Session.name sess) (Session.base sess) (Store.version store))
    sessions;
  if not quiet then begin
    Printf.printf
      "soak: seed=%d ops=%d sessions=%d commits=%d failed=%d recoveries=%d \
       head=%d%s\n"
      seed n_ops n_sessions !commits !failures !recoveries
      (Store.version store)
      (match dir with None -> "" | Some d -> " dir=" ^ d);
    (* the incremental layer's poll statistics: the CI soak asserts a
       nonzero hit count (--require-poll-hits), so the caches are
       provably exercised, not silently bypassed *)
    let ph, pm = Esm_incr.Stats.counts "session.poll" in
    let vh, vm = Esm_incr.Stats.counts "store.view" in
    let rate h m = if h + m = 0 then 0.0 else 100.0 *. float h /. float (h + m) in
    Printf.printf
      "poll: hits=%d misses=%d hit-rate=%.1f%%  store-view: hits=%d \
       misses=%d hit-rate=%.1f%%\n"
      ph pm (rate ph pm) vh vm (rate vh vm)
  end;
  match !violations with
  | [] ->
      if not quiet then print_endline "soak: all invariants hold";
      (0, store)
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      (1, store)

(* ------------------------------------------------------------------ *)
(* Check mode: reopen a (possibly killed) persisted soak and diff it   *)
(* against an uncrashed oracle rerun                                   *)
(* ------------------------------------------------------------------ *)

let with_env_chaos (f : unit -> 'a) : 'a =
  match Sys.getenv_opt "CHAOS_SEED" with
  | None -> f ()
  | Some s ->
      let seed =
        match int_of_string_opt s with
        | Some n -> n
        | None ->
            prerr_endline "esm_syncd: CHAOS_SEED must be an integer";
            exit 2
      in
      let rate =
        match Sys.getenv_opt "CHAOS_RATE" with
        | Some r -> float_of_string r
        | None -> 0.05
      in
      let c = Chaos.make ~rate ~seed () in
      let out = Chaos.with_chaos c f in
      Printf.printf "chaos: seed=%d rate=%g injected=%d fallbacks=%d\n" seed
        rate (Chaos.injected c) (Chaos.fallbacks c);
      out

let check ~seed ~ops ~sessions (dir : string) : int =
  (* The oracle: the same soak, uncrashed, persisted into a scratch
     directory.  Chaos schedules are deterministic per (seed, site,
     visit), and persistence itself visits sync.durable.write, so the
     rerun must persist too — only then does its commit sequence match
     the killed run's prefix exactly. *)
  let scratch = dir ^ ".oracle" in
  rm_rf scratch;
  let ocode, oracle =
    with_env_chaos (fun () -> soak ~quiet:true ~dir:scratch ~seed ~ops ~sessions ())
  in
  Store.close oracle;
  if ocode <> 0 then (
    Printf.printf "check: oracle rerun violated soak invariants\n";
    1)
  else
    (* Reopen and diff OUTSIDE chaos: recovery of a valid log must
       succeed unconditionally, and extra chaos visits here would
       desynchronise nothing but still inject spurious faults. *)
    match
      Store.reopen ~name:"employees" ~snapshot_every:8
        ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
        ~codec:default_codec ~dir
        (default_packed ~seed ~size:48)
    with
    | Error e ->
        Printf.printf "check: reopen of %s failed: %s\n" dir (Error.message e);
        1
    | Ok recovered ->
        let h = Store.head_version recovered in
        let oh = Store.head_version oracle in
        let bad = ref [] in
        let fail fmt =
          Printf.ksprintf (fun s -> bad := s :: !bad) fmt
        in
        if h > oh then
          fail "recovered head %d is beyond the oracle head %d" h oh
        else begin
          (* replay the oracle's first h commits into a fresh in-memory
             store: the recovered views must match that prefix exactly *)
          let reference = default_store ~seed ~size:48 () in
          List.iter
            (fun (e : _ Oplog.entry) ->
              if e.Oplog.version <= h then
                match
                  Store.commit ~session:e.Oplog.session reference e.Oplog.op
                with
                | Ok _ -> ()
                | Error er ->
                    fail "oracle prefix replay failed at %d: %s"
                      e.Oplog.version (Error.message er))
            (Store.entries_since oracle 0);
          if Store.version reference <> h then
            fail "oracle prefix stops at %d, recovered head is %d"
              (Store.version reference) h;
          if not (Table.equal (Store.view_a reference) (Store.view_a recovered))
          then fail "recovered A view diverges from the oracle prefix";
          if not (Table.equal (Store.view_b reference) (Store.view_b recovered))
          then fail "recovered B view diverges from the oracle prefix"
        end;
        Store.close recovered;
        Printf.printf "check: dir=%s recovered=%d oracle=%d\n" dir h oh;
        (match !bad with
        | [] ->
            print_endline "check: recovered store matches the oracle prefix";
            0
        | vs ->
            List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
            1)

(* ------------------------------------------------------------------ *)
(* Listen mode: the real daemon                                        *)
(* ------------------------------------------------------------------ *)

let run_listen ?dir (addr_s : string) : int =
  match Transport.addr_of_string addr_s with
  | Error e ->
      Printf.eprintf "esm_syncd: %s\n" (Error.message e);
      2
  | Ok addr ->
      let store = default_store ?dir ~seed:11 ~size:48 () in
      let srv = Transport.Server.listen addr (Wire.serve store) in
      Printf.printf "esm_syncd: listening on %s\n%!"
        (Transport.string_of_addr (Transport.Server.addr srv));
      let stop _ = Transport.Server.request_shutdown srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Transport.Server.run srv;
      let st = Transport.Core.stats (Transport.Server.core srv) in
      Printf.printf
        "esm_syncd: drained and stopped (requests=%d executed=%d \
         dedup-hits=%d stale=%d overloads=%d reaped=%d head=%d)\n%!"
        st.Transport.Core.requests st.executed st.dedup_hits st.stale
        st.overloads st.reaped (Store.version store);
      Store.close store;
      0

(* ------------------------------------------------------------------ *)
(* The remote workload shared by --connect and --soak --chaos-net      *)
(* ------------------------------------------------------------------ *)

(* One seeded client workload over a set of remote sessions, with the
   at-most-once accounting the chaos-net soak asserts:

     applied          submits acked [ok] — in the oplog exactly once;
     rejected         submits answered with a definite error/conflict —
                      rolled back, not in the oplog;
     in-doubt         submits that failed transiently: the [resolve]
                      callback (chaos soak: heal the net, resend the
                      same envelope id) settles each one into one of
                      the two buckets above, or counts it unresolved.

   The no-lost/no-dup invariant is then exact: the store head — one
   oplog entry per applied commit — must equal [applied]. *)
type remote_stats = {
  mutable applied : int;
  mutable rejected : int;
  mutable resolved_applied : int;
  mutable resolved_rejected : int;
  mutable unresolved : int;
  mutable read_failures : int;
}

let remote_workload ~seed ~ops:n_ops
    ~(resolve :
       Transport.Remote_session.t -> (Wire.response, Error.t) result option)
    (sessions : Transport.Remote_session.t list) : remote_stats =
  let module R = Transport.Remote_session in
  let r = Workload.rng ~seed in
  let stats =
    {
      applied = 0;
      rejected = 0;
      resolved_applied = 0;
      resolved_rejected = 0;
      unresolved = 0;
      read_failures = 0;
    }
  in
  (* row ids unique across concurrent client processes *)
  let fresh_id = ref (Unix.getpid () * 1_000_000) in
  let new_row side =
    incr fresh_id;
    let name = Workload.pick r [ "nu"; "xi"; "pi"; "rho" ] ^ string_of_int !fresh_id in
    match side with
    | `A ->
        Row.of_list
          [
            Value.Int !fresh_id;
            Value.Str name;
            Value.Str (Workload.pick r [ "Engineering"; "Sales"; "Ops" ]);
            Value.Int (40_000 + (500 * Workload.int r 100));
            Value.Str (name ^ "@example.com");
          ]
    | `B ->
        Row.of_list
          [ Value.Int !fresh_id; Value.Str name; Value.Str "Engineering" ]
  in
  let seen : (string, Row.t list) Hashtbl.t = Hashtbl.create 16 in
  let sessions = Array.of_list sessions in
  for i = 1 to n_ops do
    let s = sessions.(Workload.int r (Array.length sessions)) in
    (* reads refresh the removal pool; read failures are harmless to the
       accounting (Get/Pull/Ping never touch the oplog) *)
    if i mod 5 = 0 then begin
      match R.view s with
      | Ok (_, rows) -> Hashtbl.replace seen (R.name s) rows
      | Error _ -> stats.read_failures <- stats.read_failures + 1
    end;
    if i mod 11 = 0 then
      (match R.ping s with
      | Ok () -> ()
      | Error _ -> stats.read_failures <- stats.read_failures + 1);
    let adds =
      List.init (1 + Workload.int r 3) (fun _ ->
          Row_delta.Add (new_row (R.side s)))
    in
    let deltas =
      match Hashtbl.find_opt seen (R.name s) with
      | Some (_ :: _ as rows) when Workload.int r 3 = 0 ->
          Row_delta.Remove (Workload.pick r rows) :: adds
      | _ -> adds
    in
    (match R.submit s (`Batch deltas) with
    | Ok _ -> stats.applied <- stats.applied + 1
    | Error e when Error.is_transient e -> (
        (* outcome unknown: the last envelope id may or may not have
           committed.  Settle it now — by dedup the resend can never
           double-apply, so the answer is authoritative. *)
        match resolve s with
        | None -> stats.unresolved <- stats.unresolved + 1
        | Some (Ok (Wire.Resp_ok _)) ->
            stats.resolved_applied <- stats.resolved_applied + 1
        | Some (Ok _) ->
            stats.resolved_rejected <- stats.resolved_rejected + 1
        | Some (Error _) -> stats.unresolved <- stats.unresolved + 1)
    | Error _ -> stats.rejected <- stats.rejected + 1);
    if Workload.int r 4 = 0 then
      match R.pull s with
      | Ok _ -> ()
      | Error _ -> stats.read_failures <- stats.read_failures + 1
  done;
  stats

let report_convergence ~label (store : Wire.rstore)
    (sessions : Transport.Remote_session.t list) : int =
  let module R = Transport.Remote_session in
  let head = Store.version store in
  let converged =
    List.fold_left
      (fun n s ->
        match R.pull s with
        | Ok (v, _) when v = head -> n + 1
        | Ok (v, _) ->
            Printf.printf "%s: session %s stopped at %d, head is %d\n" label
              (R.name s) v head;
            n
        | Error e ->
            Printf.printf "%s: session %s final pull failed: %s\n" label
              (R.name s) (Error.message e);
            n)
      0 sessions
  in
  Printf.printf "%s: converged=%d/%d head=%d\n" label converged
    (List.length sessions) head;
  if converged = List.length sessions then 0 else 1

(* ------------------------------------------------------------------ *)
(* Connect mode: the real-socket client driver                         *)
(* ------------------------------------------------------------------ *)

let run_connect ~seed ~ops ~sessions:n_sessions (addr_s : string) : int =
  let module R = Transport.Remote_session in
  match Transport.addr_of_string addr_s with
  | Error e ->
      Printf.eprintf "esm_syncd: %s\n" (Error.message e);
      2
  | Ok addr -> (
      let pid = Unix.getpid () in
      let policy = { (Retry.default ~seed ()) with Retry.attempt_timeout = 5.0 } in
      let bind_one i =
        let name = Printf.sprintf "c%d-%d" pid (i + 1) in
        let side = if i mod 2 = 0 then `A else `B in
        R.bind ~policy (R.tcp_endpoint addr) ~name ~side
      in
      let rec bind_all acc i =
        if i = n_sessions then Ok (List.rev acc)
        else
          match bind_one i with
          | Ok s -> bind_all (s :: acc) (i + 1)
          | Error e ->
              List.iter R.close acc;
              Error (i, e)
      in
      match bind_all [] 0 with
      | Error (i, e) ->
          Printf.eprintf "connect: bind of session %d failed: %s\n" (i + 1)
            (Error.message e);
          1
      | Ok sessions ->
          let stats =
            remote_workload ~seed ~ops ~resolve:(fun s -> Some (R.resolve s))
              sessions
          in
          (* a perfect network: every submit must have a definite
             outcome and every session must reach at least the head we
             observe — other client processes may still be committing,
             so later pulls can legitimately land past it *)
          let head =
            match R.pull (List.hd sessions) with
            | Ok (v, _) -> v
            | Error _ -> -1
          in
          let converged =
            List.fold_left
              (fun n s ->
                match R.pull s with Ok (v, _) when v >= head -> n + 1 | _ -> n)
              0 sessions
          in
          Printf.printf
            "connect: pid=%d sessions=%d ops=%d applied=%d rejected=%d \
             resolved=%d/%d unresolved=%d read-failures=%d head=%d \
             converged=%d/%d\n"
            pid n_sessions ops stats.applied stats.rejected
            stats.resolved_applied
            (stats.resolved_applied + stats.resolved_rejected)
            stats.unresolved stats.read_failures head converged n_sessions;
          List.iter (fun s -> ignore (R.bye s); R.close s) sessions;
          if converged = n_sessions && stats.unresolved = 0 && head >= 0 then 0
          else 1)

(* ------------------------------------------------------------------ *)
(* Chaos-net soak: the same workload through the deterministic         *)
(* fault-injecting network, with exact no-lost/no-dup accounting       *)
(* ------------------------------------------------------------------ *)

let net_soak ~seed ~ops ~sessions:n_sessions ~require_converged () : int =
  let module R = Transport.Remote_session in
  let store = default_store ~seed ~size:48 () in
  let net = Transport.Chaos_net.create (Wire.serve store) in
  let clock = Transport.Chaos_net.clock net in
  let policy =
    {
      (Retry.default ~seed ()) with
      Retry.max_attempts = 8;
      base_delay = 0.02;
      attempt_timeout = 0.5;
      deadline = 60.0;
    }
  in
  (* bind on a quiet net: the interesting chaos is on the data ops *)
  let sessions =
    Chaos.protected (fun () ->
        List.init n_sessions (fun i ->
            let name = Printf.sprintf "n%d" (i + 1) in
            let side = if i mod 2 = 0 then `A else `B in
            match
              R.bind ~policy ~clock (Transport.Chaos_net.endpoint net) ~name
                ~side
            with
            | Ok s -> s
            | Error e ->
                Printf.eprintf "net-soak: bind %s failed: %s\n" name
                  (Error.message e);
                exit 1))
  in
  (* settling an in-doubt commit = the net heals, the client resends the
     same envelope id, the dedup window answers truthfully *)
  let resolve s =
    Transport.Chaos_net.drain net;
    Some (Chaos.protected (fun () -> R.resolve s))
  in
  let stats = remote_workload ~seed ~ops ~resolve sessions in
  Transport.Chaos_net.drain net;
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (* no-lost/no-dup: one oplog entry per acked commit, nothing else *)
  let acked = stats.applied + stats.resolved_applied in
  let head = Store.version store in
  if stats.unresolved > 0 then
    fail "%d submit(s) could not be settled even on a healed network"
      stats.unresolved
  else if head <> acked then
    fail
      "store head %d <> %d acked commits — %s"
      head acked
      (if head > acked then "a retry double-applied" else "an acked commit was lost");
  (* convergence: on the healed net every session pulls to the head *)
  let conv_code =
    Chaos.protected (fun () -> report_convergence ~label:"net-soak" store sessions)
  in
  if require_converged && conv_code <> 0 then
    fail "--require-converged: not all sessions reached the head";
  let n = Transport.Chaos_net.stats net in
  let c = Transport.Core.stats (Transport.Chaos_net.core net) in
  Printf.printf
    "net-soak: seed=%d ops=%d sessions=%d applied=%d rejected=%d \
     resolved=%d+%d unresolved=%d head=%d\n"
    seed ops n_sessions stats.applied stats.rejected stats.resolved_applied
    stats.resolved_rejected stats.unresolved head;
  Printf.printf
    "net: dropped=%d duped=%d reordered=%d truncated=%d delayed=%d \
     halfopen=%d  core: requests=%d executed=%d dedup-hits=%d stale=%d \
     overloads=%d\n"
    n.Transport.Chaos_net.dropped n.duped n.reordered n.truncated n.delayed
    n.half_opened c.Transport.Core.requests c.executed c.dedup_hits c.stale
    c.overloads;
  match !violations with
  | [] ->
      print_endline "net-soak: no lost commits, no duplicated commits";
      0
  | vs ->
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) (List.rev vs);
      1

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let script = ref "" in
  let do_soak = ref false in
  let seed = ref 42 in
  let ops = ref 200 in
  let sessions = ref 4 in
  let dir = ref "" in
  let kill_at = ref 0 in
  let check_dir = ref "" in
  let require_poll_hits = ref false in
  let listen = ref "" in
  let connect = ref "" in
  let chaos_net = ref false in
  let require_converged = ref false in
  let specs =
    [
      ( "--listen",
        Arg.Set_string listen,
        "ADDR serve the store on unix:PATH, HOST:PORT or :PORT" );
      ( "--connect",
        Arg.Set_string connect,
        "ADDR drive remote sessions against a --listen daemon" );
      ( "--chaos-net",
        Arg.Set chaos_net,
        " with --soak: run the workload through the chaos network" );
      ( "--require-converged",
        Arg.Set require_converged,
        " with --chaos-net: exit 1 unless every session reaches the head" );
      ("--script", Arg.Set_string script, "FILE replay a wire-protocol script");
      ("--soak", Arg.Set do_soak, " run the random multi-session soak");
      ("--seed", Arg.Set_int seed, "N soak workload seed (default 42)");
      ("--ops", Arg.Set_int ops, "N soak operation count (default 200)");
      ( "--sessions",
        Arg.Set_int sessions,
        "N soak session count (default 4)" );
      ( "--dir",
        Arg.Set_string dir,
        "D persist the soak store's oplog to directory D" );
      ( "--kill-at",
        Arg.Set_int kill_at,
        "N hard-exit (status 130) after the Nth durable write syscall" );
      ( "--check-dir",
        Arg.Set_string check_dir,
        "D reopen a killed log in D and diff against an uncrashed rerun" );
      ( "--require-poll-hits",
        Arg.Set require_poll_hits,
        " exit 1 if the soak recorded zero session.poll cache hits" );
    ]
  in
  let usage =
    "esm_syncd (--listen ADDR | --connect ADDR | --script FILE | --soak \
     [--chaos-net] | --check-dir D) [options]"
  in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let code =
    if !listen <> "" then
      run_listen ?dir:(if !dir = "" then None else Some !dir) !listen
    else if !connect <> "" then
      run_connect ~seed:!seed ~ops:!ops ~sessions:!sessions !connect
    else if !do_soak && !chaos_net then
      with_env_chaos
        (net_soak ~seed:!seed ~ops:!ops ~sessions:!sessions
           ~require_converged:!require_converged)
    else if !script <> "" then with_env_chaos (fun () -> run_script !script)
    else if !check_dir <> "" then
      check ~seed:!seed ~ops:!ops ~sessions:!sessions !check_dir
    else if !do_soak then begin
      if !kill_at > 0 then begin
        if !dir = "" then (
          prerr_endline "esm_syncd: --kill-at requires --dir";
          exit 2);
        Durable_log.set_kill_at (Some !kill_at)
      end;
      let code, store =
        with_env_chaos
          (soak
             ?dir:(if !dir = "" then None else Some !dir)
             ~seed:!seed ~ops:!ops ~sessions:!sessions)
      in
      Store.close store;
      let poll_hits, _ = Esm_incr.Stats.counts "session.poll" in
      if !require_poll_hits && poll_hits = 0 then begin
        print_endline
          "VIOLATION: --require-poll-hits: the soak recorded zero \
           session.poll cache hits (the memoized poll path was bypassed)";
        max code 1
      end
      else code
    end
    else (
      prerr_endline usage;
      2)
  in
  exit code
