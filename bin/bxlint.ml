(* bxlint: static law-level analysis of the example bx pipelines.

   For every entry of the example catalog (Esm_analysis.Catalog):

   1. infer the law level from the construction pedigree (Law_infer);
   2. lint each registered pipeline at its requested optimizer level,
      reporting law-driven rewrites and erroring when a rewrite fires
      above the level the pedigree justifies;
   3. cross-check the static verdict against the sampling Certify
      report — a static level strictly above what sampling supports
      means the analyzer (or a pedigree claim) is wrong, and is
      reported as an analyzer bug, loudly.

   A built-in self-test additionally asserts that the known
   optimize_unsafe_commuting miscompilation (test/test_command.ml) is
   statically rejected, and that the same program on the genuinely
   commuting pair bx is statically accepted.

   Compiled query plans additionally get (a) an abstract-domain plan
   lint (Lint.lint_plan: dead/implied where stages, trivial stages,
   schema violations, FD-less joins) and (b) a provenance gate: a plan
   whose pedigree contains an Opaque node lost its provenance somewhere
   in compilation, which defeats the whole static analysis — that is an
   error unless the entry label is listed in .bxlint-allow-opaque.

   Exit codes: 0 clean; 1 error-severity diagnostics, cross-check
   failure, or opaque-plan gate failure; 2 self-test failure (analyzer
   bug).

   Usage: bxlint [--json]  *)

open Esm_analysis

(* The opaque-plan allowlist: one catalog label per line; blank lines
   and #-comments ignored.  Searched in the working directory. *)
let allowlist_file = ".bxlint-allow-opaque"

let read_allowlist () : string list =
  match open_in allowlist_file with
  | exception Sys_error _ -> []
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            List.rev acc
        | line -> (
            match String.trim line with
            | "" -> go acc
            | l when l.[0] = '#' -> go acc
            | l -> go (l :: acc))
      in
      go []

(* The provenance gate: every audited entry that carries a compiled
   query plan must have an Opaque-free pedigree, or an explicit
   allowlist entry.  Returns the offending labels. *)
let opaque_gate (audits : Catalog.audit list) : string list =
  let allowed = read_allowlist () in
  List.filter_map
    (fun (a : Catalog.audit) ->
      if
        a.Catalog.plan_query <> None
        && Esm_core.Pedigree.has_opaque a.Catalog.pedigree
        && not (List.mem a.Catalog.label allowed)
      then Some a.Catalog.label
      else None)
    audits

let selftest () : string list =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* the dynamic counterexample must be rejected statically *)
  let miscompile = Catalog.known_miscompilation () in
  if not (Lint.has_errors miscompile) then
    fail
      "known optimize_unsafe_commuting miscompilation (set_a 3; set_b 4; \
       set_a 3 on parity) was NOT statically rejected";
  (* ...and for the right reason: a commuting-only rewrite fires *)
  if
    not
      (List.exists
         (fun d ->
           Lint.is_error d && Law_infer.leq `Commuting d.Lint.requires)
         miscompile)
  then
    fail
      "miscompilation rejection did not point at a commutation-requiring \
       rewrite";
  (* the same program on the genuinely commuting pair bx is fine *)
  let on_pair =
    let open Esm_core in
    (Lint.check_level ~requested:`Commuting ~inferred:`Commuting
       ~subject:"pair/commuting"
    |> Option.to_list)
    @ Lint.lint_command ~requested:`Commuting ~inferred:`Commuting
        ~eq_a:Int.equal ~eq_b:Int.equal
        Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3)))
  in
  if Lint.has_errors on_pair then
    fail "the same program on the commuting pair bx was wrongly rejected";
  (* the atomicity rule: a writing pipeline over a fallible construction
     warns; wrapping it in Atomic silences the warning *)
  let fallible_ped =
    Esm_core.Pedigree.Of_lens { name = "owner"; vwb = true }
  in
  (match
     Lint.check_atomicity ~pedigree:fallible_ped ~has_sets:true
       ~subject:"selftest"
   with
  | Some d when d.Lint.rule = Lint.Unprotected_fallible -> ()
  | _ ->
      fail
        "a writing pipeline over a fallible lens did not get an \
         unprotected-fallible warning");
  (match
     Lint.check_atomicity
       ~pedigree:(Esm_core.Pedigree.Atomic fallible_ped)
       ~has_sets:true ~subject:"selftest"
   with
  | None -> ()
  | Some _ ->
      fail "an atomic-wrapped pipeline was wrongly flagged as unprotected");
  List.rev !failures

let () =
  let json = Array.exists (fun a -> a = "--json") Sys.argv in
  (* bring the ESMQL-derived scenarios (strict pass + validated
     fallback) under the same audit, cross-check and opaque-plan gate *)
  Esm_ql.Audit.register_catalog ();
  let audits = Catalog.audit_all () in
  let self_failures = selftest () in
  let opaque_plans = opaque_gate audits in
  let audit_diags (a : Catalog.audit) =
    List.concat_map (fun p -> p.Catalog.diagnostics) a.Catalog.pipelines
    @ a.Catalog.plan_diagnostics
  in
  let n_errors =
    List.fold_left
      (fun n a ->
        n
        + List.length (List.filter Lint.is_error (audit_diags a))
        + if a.Catalog.cross_check_ok then 0 else 1)
      0 audits
    + List.length opaque_plans
  in
  let n_warnings =
    List.fold_left
      (fun n a ->
        n
        + List.length
            (List.filter
               (fun d -> d.Lint.severity = Lint.Warning)
               (audit_diags a)))
      0 audits
  in
  if json then (
    let selftest_json =
      Printf.sprintf {|{"ok":%b,"failures":[%s]}|} (self_failures = [])
        (String.concat ","
           (List.map
              (fun s -> "\"" ^ Lint.json_escape s ^ "\"")
              self_failures))
    in
    print_string
      (Printf.sprintf
         {|{"schema_version":3,"audits":%s,"selftest":%s,"opaque_plans":[%s],"errors":%d,"warnings":%d}|}
         (Catalog.audits_to_json audits)
         selftest_json
         (String.concat ","
            (List.map
               (fun l -> "\"" ^ Lint.json_escape l ^ "\"")
               opaque_plans))
         n_errors n_warnings);
    print_newline ())
  else (
    Format.printf
      "bxlint: static law-level analysis over the example catalog@.@.";
    List.iter
      (fun a -> Format.printf "%a@." Catalog.pp_audit a)
      audits;
    (match self_failures with
    | [] ->
        Format.printf
          "self-test: the known commuting miscompilation is statically \
           rejected; the commuting pair program is accepted@."
    | fs ->
        List.iter (fun f -> Format.printf "ANALYZER BUG: %s@." f) fs);
    List.iter
      (fun a ->
        if not a.Catalog.cross_check_ok then
          Format.printf
            "ANALYZER BUG: %s: static level %s refuted by sampling@."
            a.Catalog.label
            (Law_infer.to_string a.Catalog.inferred))
      audits;
    List.iter
      (fun l ->
        Format.printf
          "PROVENANCE: %s: compiled plan has an opaque pedigree node (not \
           allowlisted in %s)@."
          l allowlist_file)
      opaque_plans;
    Format.printf "@.%d catalog entries, %d error(s), %d warning(s)@."
      (List.length audits) n_errors n_warnings);
  if self_failures <> [] then exit 2 else if n_errors > 0 then exit 1
