(* Benchmark harness.

   The paper (a formal workshop abstract) contains no empirical tables or
   figures; EXPERIMENTS.md defines the performance characterisation this
   harness produces instead:

   - B1 instances/*   : primitive synchronisation step across the four
                        instance families (Lemmas 4-6 + Section 3.4)
   - B2 translate/*   : cost of the Section 3.3 translations (derived put
                        vs native operations, and the double translation)
   - B3 compose/*     : composition-chain scaling (open problem, Section 5)
   - B4 relational/*  : relational-lens view update vs table size
   - B5 embedding/*   : deep (free monad) vs shallow (state monad) and
                        functor vs record representations

   Run with:  dune exec bench/main.exe  *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

type person = { name : string; age : int }

let name_lens : (person, string) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"name"
    ~get:(fun p -> p.name)
    ~put:(fun p name -> { p with name })
    ()

let equal_person p1 p2 = String.equal p1.name p2.name && p1.age = p2.age

module Name_bx = Esm_core.Of_lens.Make (struct
  type s = person
  type v = string

  let lens = name_lens
  let equal_s = equal_person
end)

let parity : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1 - (2 * (b land 1)))
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1 - (2 * (a land 1)))
    ()

module Parity_bx = Esm_core.Of_algebraic.Make (struct
  type ta = int
  type tb = int

  let bx = parity
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

let double_iso : (int, int) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.of_iso ~name:"double" (fun x -> 2 * x) (fun x -> x / 2)

module Double_instance = (val Esm_symlens.Symlens.to_instance double_iso)

module Double_put = Esm_core.Of_symmetric.Make (Double_instance) (struct
  let equal_a = Int.equal
  let equal_b = Int.equal
end)

module Pair_bx = Esm_core.Pair_bx.Make (struct
  type ta = int
  type tb = int

  let equal_a = Int.equal
  let equal_b = Int.equal
end)

let person0 = { name = "ada"; age = 36 }

(* ------------------------------------------------------------------ *)
(* B1: one synchronisation step (set_a then read get_b) per instance   *)
(* ------------------------------------------------------------------ *)

let b1_tests =
  [
    Test.make ~name:"of_lens(record field)"
      (Staged.stage (fun () ->
           let open Name_bx.Infix in
           Name_bx.run
             (Name_bx.set_a { name = "grace"; age = 1 } >> Name_bx.get_b)
             person0));
    Test.make ~name:"of_algebraic(parity)"
      (Staged.stage (fun () ->
           let open Parity_bx.Infix in
           Parity_bx.run (Parity_bx.set_a 7 >> Parity_bx.get_b) (0, 0)));
    Test.make ~name:"of_symmetric(iso)"
      (Staged.stage
         (let s0 = Double_put.initial ~seed_a:1 in
          fun () -> Double_put.run (Double_put.put_ab 21) s0));
    Test.make ~name:"pair(state on A*B)"
      (Staged.stage (fun () ->
           let open Pair_bx.Infix in
           Pair_bx.run (Pair_bx.set_a 7 >> Pair_bx.get_b) (0, 0)));
    Test.make ~name:"effectful(S4, with trace)"
      (Staged.stage (fun () ->
           let module E = Esm_core.Effectful.Paper_example in
           let open E.Infix in
           E.run (E.set_a 7 >> E.get_b) 0));
  ]

(* ------------------------------------------------------------------ *)
(* B2: translation overhead (Section 3.3)                              *)
(* ------------------------------------------------------------------ *)

module Name_put_derived = Esm_core.Translate.Set_to_put_stateful (Name_bx)
module Name_set_roundtrip =
  Esm_core.Translate.Put_to_set_stateful (Name_put_derived)
module Double_set_derived = Esm_core.Translate.Put_to_set_stateful (Double_put)

let b2_tests =
  [
    Test.make ~name:"native set_a (set-bx)"
      (Staged.stage (fun () ->
           Name_bx.run (Name_bx.set_a { name = "grace"; age = 1 }) person0));
    Test.make ~name:"derived put_ab (set2pp)"
      (Staged.stage (fun () ->
           Name_put_derived.run
             (Name_put_derived.put_ab { name = "grace"; age = 1 })
             person0));
    Test.make ~name:"double-translated set_a (pp2set.set2pp)"
      (Staged.stage (fun () ->
           Name_set_roundtrip.run
             (Name_set_roundtrip.set_a { name = "grace"; age = 1 })
             person0));
    Test.make ~name:"native put_ab (of_symmetric)"
      (Staged.stage
         (let s0 = Double_put.initial ~seed_a:1 in
          fun () -> Double_put.run (Double_put.put_ab 21) s0));
    Test.make ~name:"derived set_a (pp2set of of_symmetric)"
      (Staged.stage
         (let s0 = Double_put.initial ~seed_a:1 in
          fun () -> Double_set_derived.run (Double_set_derived.set_a 21) s0));
  ]

(* ------------------------------------------------------------------ *)
(* B3: composition-chain scaling                                       *)
(* ------------------------------------------------------------------ *)

let incr_bx =
  Esm_core.Concrete.of_lens (Esm_lens.Lens.of_iso ~name:"incr" succ pred)

let chain_step n =
  let packed =
    Esm_core.Compose.chain_packed n
      (Esm_core.Concrete.pack ~bx:incr_bx ~init:0 ~eq_state:Int.equal)
  in
  Test.make
    ~name:(Printf.sprintf "chain n=%02d" n)
    (Staged.stage (fun () ->
         Esm_core.Program.observe packed
           [ Esm_core.Program.Set_a 5; Esm_core.Program.Get_b ]))

let b3_tests = List.map chain_step [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* B4: relational-lens workloads vs table size                         *)
(* ------------------------------------------------------------------ *)

open Esm_relational

let eng = Pred.(col "dept" = str "Engineering")
let select_lens = Rlens.select eng

let project_lens =
  Rlens.project ~keep:[ "id"; "name"; "dept" ] ~key:[ "id" ]
    Workload.employees_schema

let select_dlens = Rlens.dselect eng

let project_dlens =
  Rlens.dproject ~keep:[ "id"; "name"; "dept" ] ~key:[ "id" ]
    Workload.employees_schema

let relational_at size =
  let table = Workload.employees ~seed:42 ~size in
  let view = Esm_lens.Lens.get select_lens table in
  let proj_view = Esm_lens.Lens.get project_lens table in
  (* one-row view deltas for the incremental path: a fresh hire *)
  let hire =
    Row.of_list
      [
        Value.Int 999_999;
        Value.Str "fresh hire";
        Value.Str "Engineering";
        Value.Int 50_000;
        Value.Str "hire@x";
      ]
  in
  let hire_view = Row.project Workload.employees_schema [ "id"; "name"; "dept" ] hire in
  [
    Test.make
      ~name:(Printf.sprintf "select.get   n=%04d" size)
      (Staged.stage (fun () -> Esm_lens.Lens.get select_lens table));
    Test.make
      ~name:(Printf.sprintf "select.put   n=%04d" size)
      (Staged.stage (fun () -> Esm_lens.Lens.put select_lens table view));
    Test.make
      ~name:(Printf.sprintf "select.put_delta  n=%04d" size)
      (Staged.stage (fun () ->
           Rlens.put_delta select_dlens table [ Row_delta.Add hire ]));
    Test.make
      ~name:(Printf.sprintf "project.put  n=%04d" size)
      (Staged.stage (fun () -> Esm_lens.Lens.put project_lens table proj_view));
    Test.make
      ~name:(Printf.sprintf "project.put_delta n=%04d" size)
      (Staged.stage (fun () ->
           Rlens.put_delta project_dlens table [ Row_delta.Add hire_view ]));
  ]

let b4_tests = List.concat_map relational_at [ 64; 512; 4096 ]

(* ------------------------------------------------------------------ *)
(* B5: representation ablations                                        *)
(* ------------------------------------------------------------------ *)

module Theory = Esm_monad.State_theory.Make (struct
  type t = int
end)

let deep_term =
  (* get; set (s+1); get; set (s'*2); return s' — built once. *)
  Theory.Term.bind Theory.get (fun s ->
      Theory.Term.bind (Theory.set (s + 1)) (fun () ->
          Theory.Term.bind Theory.get (fun s' ->
              Theory.Term.bind (Theory.set (s' * 2)) (fun () ->
                  Theory.Term.return s'))))

module Direct_state = Esm_monad.State.Make (struct
  type t = int
end)

let shallow_prog =
  Direct_state.bind Direct_state.get (fun s ->
      Direct_state.bind (Direct_state.set (s + 1)) (fun () ->
          Direct_state.bind Direct_state.get (fun s' ->
              Direct_state.bind (Direct_state.set (s' * 2)) (fun () ->
                  Direct_state.return s'))))

let concrete_name = Esm_core.Concrete.of_lens name_lens

let b5_tests =
  [
    Test.make ~name:"deep: free-monad term, interpreted"
      (Staged.stage (fun () -> Theory.denote deep_term 17));
    Test.make ~name:"shallow: state-monad program"
      (Staged.stage (fun () -> Direct_state.run shallow_prog 17));
    Test.make ~name:"functor rep: Of_lens set_b"
      (Staged.stage (fun () -> Name_bx.run (Name_bx.set_b "grace") person0));
    Test.make ~name:"record rep: Concrete set_b"
      (Staged.stage (fun () ->
           concrete_name.Esm_core.Concrete.set_b "grace" person0));
  ]

(* ------------------------------------------------------------------ *)
(* B6: wrapper overhead (journalled / undo / effectful vs raw)         *)
(* ------------------------------------------------------------------ *)

let raw_parity = Esm_core.Concrete.of_algebraic parity

let journalled_parity =
  Esm_core.Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal raw_parity

let undoable_parity =
  Esm_core.Journal.Undo.wrap ~eq_a:Int.equal ~eq_b:Int.equal raw_parity

let b6_tests =
  [
    Test.make ~name:"raw concrete set_a"
      (Staged.stage (fun () -> raw_parity.Esm_core.Concrete.set_a 7 (0, 0)));
    Test.make ~name:"journalled set_a"
      (Staged.stage
         (let st = Esm_core.Journal.initial (0, 0) in
          fun () -> journalled_parity.Esm_core.Concrete.set_a 7 st));
    Test.make ~name:"undoable set_a"
      (Staged.stage
         (let st = Esm_core.Journal.Undo.initial (0, 0) in
          fun () -> undoable_parity.Esm_core.Concrete.set_a 7 st));
    Test.make ~name:"effectful set_a (trace)"
      (Staged.stage (fun () ->
           Esm_core.Effectful.Paper_example.run
             (Esm_core.Effectful.Paper_example.set_a 7)
             0));
  ]

(* ------------------------------------------------------------------ *)
(* B7: MDE synchronisation vs model size                               *)
(* ------------------------------------------------------------------ *)

open Esm_modelbx

let class_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Class";
        attributes =
          [ ("name", Metamodel.Tstr); ("abstract", Metamodel.Tbool); ("doc", Metamodel.Tstr) ];
      };
    ]

let table_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Table";
        attributes =
          [ ("name", Metamodel.Tstr); ("persistent", Metamodel.Tbool); ("engine", Metamodel.Tstr) ];
      };
    ]

let mde_spec =
  Mbx.v ~name:"class<->table" ~left_mm:class_mm ~right_mm:table_mm
    [
      {
        Mbx.left_class = "Class";
        right_class = "Table";
        key = [ ("name", "name") ];
        synced = [ ("abstract", "persistent") ];
      };
    ]

let class_model_of_size n =
  Model.of_objects
    (List.init n (fun i ->
         Model.obj ~id:(i + 1) ~cls:"Class"
           [
             ("name", Model.Vstr (Printf.sprintf "Class%03d" i));
             ("abstract", Model.Vbool (i mod 2 = 0));
             ("doc", Model.Vstr "d");
           ]))

let mde_at n =
  let left = class_model_of_size n in
  let right = Mbx.fwd mde_spec left Model.empty in
  (* a one-object edit: flip one abstract flag *)
  let edited =
    match Model.objects left with
    | o :: _ ->
        Model.update left
          (Model.set_attr o "abstract" (Model.Vbool false))
    | [] -> left
  in
  [
    Test.make
      ~name:(Printf.sprintf "consistency check n=%03d" n)
      (Staged.stage (fun () -> Mbx.consistent mde_spec left right));
    Test.make
      ~name:(Printf.sprintf "fwd after 1 edit    n=%03d" n)
      (Staged.stage (fun () -> Mbx.fwd mde_spec edited right));
    Test.make
      ~name:(Printf.sprintf "fwd_delta 1 edit    n=%03d" n)
      (Staged.stage (fun () ->
           Mbx.fwd_delta mde_spec ~old_left:left edited right));
    Test.make
      ~name:(Printf.sprintf "diff 1-edit models  n=%03d" n)
      (Staged.stage (fun () -> Diff.diff left edited));
  ]

let b7_tests = List.concat_map mde_at [ 8; 32; 128 ]

(* ------------------------------------------------------------------ *)
(* B8: surface-language machinery                                      *)
(* ------------------------------------------------------------------ *)

let compiled_view_lens =
  Esm_relational.Query.lens_of_string ~schema:Workload.employees_schema
    ~key:[ "id" ]
    "employees | where dept = \"Engineering\" | select id, name"

let handwritten_view_lens =
  Esm_lens.Lens.(
    Rlens.select eng
    // Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ]
         Workload.employees_schema)

let b8_table = Workload.employees ~seed:42 ~size:512
let b8_view = Esm_lens.Lens.get compiled_view_lens b8_table

let config_text =
  String.concat "\n"
    (List.init 200 (fun i ->
         if i mod 5 = 0 then Printf.sprintf "# section %d" i
         else Printf.sprintf "key%03d = value%03d" i i))

let config_view = Esm_lens.Lens.get Esm_lens.Config_lens.bindings config_text

let optimizer_cmd =
  (* a set-heavy program the optimizer shrinks: repeated redundant sets *)
  let rec build n acc =
    if n = 0 then acc
    else
      build (n - 1)
        (Esm_core.Command.Seq
           ( Esm_core.Command.Set_a 3,
             Esm_core.Command.Seq (Esm_core.Command.Set_a 3, acc) ))
  in
  build 16 Esm_core.Command.Skip

let parity_concrete = Esm_core.Concrete.of_algebraic parity

let optimized_cmd =
  Esm_core.Command.optimize ~eq_a:Int.equal ~eq_b:Int.equal optimizer_cmd

let b8_tests =
  [
    Test.make ~name:"compiled view lens put (n=512)"
      (Staged.stage (fun () ->
           Esm_lens.Lens.put compiled_view_lens b8_table b8_view));
    Test.make ~name:"handwritten view lens put (n=512)"
      (Staged.stage (fun () ->
           Esm_lens.Lens.put handwritten_view_lens b8_table b8_view));
    Test.make ~name:"config lens put (200 lines)"
      (Staged.stage (fun () ->
           Esm_lens.Lens.put Esm_lens.Config_lens.bindings config_text
             config_view));
    Test.make ~name:"command: exec unoptimized (32 sets)"
      (Staged.stage (fun () ->
           Esm_core.Command.exec parity_concrete optimizer_cmd (0, 0)));
    Test.make ~name:"command: exec optimized"
      (Staged.stage (fun () ->
           Esm_core.Command.exec parity_concrete optimized_cmd (0, 0)));
  ]

(* ------------------------------------------------------------------ *)
(* B9: transactional (atomic) execution overhead                        *)
(* ------------------------------------------------------------------ *)

let b9_table = Workload.employees ~seed:42 ~size:512
let b9_bx = Esm_core.Concrete.of_lens select_lens
let b9_view = Esm_lens.Lens.get select_lens b9_table
let b9_hardened = Esm_core.Atomic.harden b9_bx

(* a view violating the selection predicate: the put fails and atomic
   rolls back — the cost of the failure path *)
let b9_bad_view =
  Table.of_rows Workload.employees_schema
    [
      Row.of_list
        [
          Value.Int 1;
          Value.Str "impostor";
          Value.Str "Sales";
          Value.Int 1;
          Value.Str "x@x";
        ];
    ]

let b9_tests =
  [
    Test.make ~name:"raw set_b (full put, n=512)"
      (Staged.stage (fun () ->
           b9_bx.Esm_core.Concrete.set_b b9_view b9_table));
    Test.make ~name:"atomic set_b, commit path"
      (Staged.stage (fun () ->
           Esm_core.Atomic.set_b b9_bx b9_view b9_table));
    Test.make ~name:"hardened set_b (harden wrapper)"
      (Staged.stage (fun () ->
           b9_hardened.Esm_core.Concrete.set_b b9_view b9_table));
    Test.make ~name:"atomic set_b, rollback path"
      (Staged.stage (fun () ->
           Esm_core.Atomic.set_b b9_bx b9_bad_view b9_table));
  ]

(* ------------------------------------------------------------------ *)
(* B10: sync engine — batched delta commits and replay recovery        *)
(* ------------------------------------------------------------------ *)

module Sync = Esm_sync

let b10_table = Workload.employees ~seed:7 ~size:4096

let b10_store ?(snapshot_every = 1024) () :
    (Table.t, Table.t, Row_delta.t, Row_delta.t) Sync.Store.t =
  Sync.Store.of_packed ~name:"bench" ~snapshot_every
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
    (Esm_core.Concrete.packed_of_lens ~vwb:false ~init:b10_table
       ~eq_state:Table.equal select_lens)

(* a 64-edit burst on the B (engineering) view: 32 fresh hires and 32
   departures *)
let b10_burst : Row_delta.t list =
  let eng_rows =
    Table.rows (Esm_lens.Lens.get select_lens b10_table)
  in
  List.init 32 (fun i ->
      Row_delta.Add
        (Row.of_list
           [
             Value.Int (100_000 + i);
             Value.Str ("hire" ^ string_of_int i);
             Value.Str "Engineering";
             Value.Int 60_000;
             Value.Str "hire@example.com";
           ]))
  @ List.map (fun r -> Row_delta.Remove r) (List.filteri (fun i _ -> i < 32) eng_rows)

let b10_commit store op =
  match Sync.Store.commit ~session:"bench" store op with
  | Ok _ -> ()
  | Error e -> failwith (Esm_core.Error.message e)

(* a store with 8 committed bursts and only the version-0 snapshot, so
   crash+recover replays all 8 entries *)
let b10_replay_store =
  let store = b10_store () in
  for _ = 1 to 8 do
    b10_commit store (Sync.Store.Batch_b b10_burst)
  done;
  store

let b10_tests =
  [
    Test.make ~name:"batched commit (64-delta burst, n=4096)"
      (Staged.stage (fun () ->
           let store = b10_store () in
           b10_commit store (Sync.Store.Batch_b b10_burst)));
    Test.make ~name:"one-at-a-time (64 commits, n=4096)"
      (Staged.stage (fun () ->
           let store = b10_store () in
           List.iter
             (fun d -> b10_commit store (Sync.Store.Batch_b [ d ]))
             b10_burst));
    Test.make ~name:"replay recovery (8 bursts, n=4096)"
      (Staged.stage (fun () ->
           Sync.Store.crash b10_replay_store;
           Sync.Store.recover b10_replay_store));
  ]

(* ------------------------------------------------------------------ *)
(* B11: durable log — fsync policy cost and reopen recovery            *)
(* ------------------------------------------------------------------ *)

let b11_codec =
  let schema_b = Table.schema (Esm_lens.Lens.get select_lens b10_table) in
  Sync.Wire.durable_op_codec ~schema_a:Workload.employees_schema ~schema_b

let rec b11_rm path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> b11_rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let b11_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("esm-bench-" ^ name) in
  b11_rm d;
  d

let b11_store ?(snapshot_every = 64) ?(size = 4096) ~fsync ~dir () :
    (Table.t, Table.t, Row_delta.t, Row_delta.t) Sync.Store.t =
  let init = Workload.employees ~seed:7 ~size in
  Sync.Store.of_packed ~name:"bench" ~snapshot_every
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
    ~persist:(Sync.Store.persist ~fsync ~dir b11_codec)
    (Esm_core.Concrete.packed_of_lens ~vwb:false ~init ~eq_state:Table.equal
       select_lens)

(* one net-zero commit: add a fresh engineering row and remove it in the
   same batch, so every run costs the same whatever came before *)
let b11_net_zero =
  let row =
    Row.of_list
      [
        Value.Int 999_999;
        Value.Str "b11";
        Value.Str "Engineering";
        Value.Int 60_000;
        Value.Str "b11@example.com";
      ]
  in
  Sync.Store.Batch_b [ Row_delta.Add row; Row_delta.Remove row ]

let b11_policy_tests =
  List.map
    (fun fsync ->
      let dir = b11_dir ("fsync-" ^ Sync.Durable_log.fsync_name fsync) in
      let store = b11_store ~fsync ~dir () in
      Test.make
        ~name:
          (Printf.sprintf "commit fsync=%-8s (n=4096)"
             (Sync.Durable_log.fsync_name fsync))
        (Staged.stage (fun () -> b10_commit store b11_net_zero)))
    Sync.Durable_log.
      [ Fsync_never; Fsync_every 64; Fsync_every 8; Fsync_always ]

(* reopen recovery vs snapshot cadence: a 127-commit log at n=512 —
   cadence 8 leaves a 7-entry suffix after the version-120 snapshot,
   cadence 64 a 63-entry suffix, cadence 100000 replays all 127 *)
let b11_reopen_tests =
  List.map
    (fun snapshot_every ->
      let dir = b11_dir (Printf.sprintf "reopen-%d" snapshot_every) in
      let store =
        b11_store ~snapshot_every ~size:512 ~fsync:Sync.Durable_log.Fsync_never
          ~dir ()
      in
      for _ = 1 to 127 do
        b10_commit store b11_net_zero
      done;
      Sync.Store.close store;
      Test.make
        ~name:
          (Printf.sprintf "reopen 127 commits, snapshot_every=%-6d (n=512)"
             snapshot_every)
        (Staged.stage (fun () ->
             match
               Sync.Store.reopen ~name:"bench" ~snapshot_every
                 ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
                 ~codec:b11_codec ~dir
                 (Esm_core.Concrete.packed_of_lens ~vwb:false
                    ~init:(Workload.employees ~seed:7 ~size:512)
                    ~eq_state:Table.equal select_lens)
             with
             | Ok store -> Sync.Store.close store
             | Error e -> failwith (Esm_core.Error.message e))))
    [ 8; 64; 100_000 ]

let b11_tests = b11_policy_tests @ b11_reopen_tests

(* ------------------------------------------------------------------ *)
(* B12: law inference unlocking the optimizer on a compiled plan        *)
(* ------------------------------------------------------------------ *)

(* A compiled relational pipeline (where id <= 4, key-preserving) whose
   pedigree the analysis resolves to `Overwriteable.  Before pedigreed
   compilation this bx was Opaque: the optimizer had to run at the `Any
   floor, where none of the (SS) collapses below fire.  The workload is
   16 redundant whole-view publishes — each one a full relational put on
   the n=512 source table. *)
let b12_dlens =
  Esm_relational.Query.to_dlens ~schema:Workload.employees_schema
    ~key:[ "id" ]
    (Esm_relational.Query.parse "employees | where id <= 4")

let b12_table = Workload.employees ~seed:42 ~size:512

let b12_packed = Rlens.packed_of_dlens ~init:b12_table b12_dlens
let b12_bx = Esm_core.Concrete.of_lens b12_dlens.Rlens.lens
let b12_view1 = Esm_lens.Lens.get b12_dlens.Rlens.lens b12_table
let b12_view2 = Algebra.select Pred.(col "id" <= int 3) b12_view1

let b12_cmd =
  let rec build n acc =
    if n = 0 then acc
    else
      build (n - 1)
        (Esm_core.Command.Seq
           ( Esm_core.Command.Set_b b12_view1,
             Esm_core.Command.Seq (Esm_core.Command.Set_b b12_view2, acc) ))
  in
  build 8 Esm_core.Command.Skip

let b12_inferred = Esm_analysis.Law_infer.of_packed b12_packed

let b12_opaque_floor =
  (* what the optimizer could do before the pedigree existed *)
  Esm_core.Command.optimize ~eq_a:Table.equal ~eq_b:Table.equal b12_cmd

let b12_at_inferred =
  Esm_core.Command.optimize_at
    (Esm_analysis.Law_infer.to_command_level b12_inferred)
    ~eq_a:Table.equal ~eq_b:Table.equal b12_cmd

let b12_tests =
  [
    Test.make ~name:"plan command: exec raw (16 view sets, n=512)"
      (Staged.stage (fun () ->
           Esm_core.Command.exec b12_bx b12_cmd b12_table));
    Test.make ~name:"plan command: exec at opaque floor"
      (Staged.stage (fun () ->
           Esm_core.Command.exec b12_bx b12_opaque_floor b12_table));
    Test.make ~name:"plan command: exec at inferred level"
      (Staged.stage (fun () ->
           Esm_core.Command.exec b12_bx b12_at_inferred b12_table));
  ]

(* ------------------------------------------------------------------ *)
(* B13: incremental recomputation — the memoized poll/view hot paths   *)
(* ------------------------------------------------------------------ *)

(* A store warmed past one committed burst, with every cache populated:
   the steady state a polling client observes between edits. *)
let b13_store =
  let store = b10_store () in
  b10_commit store (Sync.Store.Batch_b b10_burst);
  ignore (Sync.Store.view_a store);
  ignore (Sync.Store.view_b store);
  store

let b13_session =
  let sess = Sync.Session.bind b13_store ~name:"b13" ~side:`B in
  ignore (Sync.Session.pull sess);
  sess

let b13_query =
  Esm_relational.Query.parse
    "employees | where dept = \"Engineering\" | select id, name, dept"

let b13_dlens =
  Esm_relational.Query.to_dlens ~schema:Workload.employees_schema
    ~key:[ "id" ] b13_query

let b13_table = Workload.employees ~seed:9 ~size:4096

let () =
  (* warm the table-hash accumulator and the dlens view cache *)
  ignore (Table.hash b13_table);
  ignore (Rlens.get_memo b13_dlens b13_table)

let b13_tests =
  [
    Test.make ~name:"store view read, uncached (n=4096)"
      (Staged.stage (fun () -> Sync.Store.view_b_uncached b13_store));
    Test.make ~name:"store view read, memoized hit (n=4096)"
      (Staged.stage (fun () -> Sync.Store.view_b b13_store));
    Test.make ~name:"session poll, unchanged store"
      (Staged.stage (fun () -> Sync.Session.pull b13_session));
    Test.make ~name:"rlens view, uncached get (n=4096)"
      (Staged.stage (fun () ->
           Esm_lens.Lens.get b13_dlens.Rlens.lens b13_table));
    Test.make ~name:"rlens view, memoized hit (n=4096)"
      (Staged.stage (fun () -> Rlens.get_memo b13_dlens b13_table));
    Test.make ~name:"plan compile, uncached (3-stage query)"
      (Staged.stage (fun () ->
           Esm_relational.Query.to_dlens_uncached
             ~schema:Workload.employees_schema ~key:[ "id" ] b13_query));
    Test.make ~name:"plan compile, memoized hit"
      (Staged.stage (fun () ->
           Esm_relational.Query.to_dlens ~schema:Workload.employees_schema
             ~key:[ "id" ] b13_query));
    Test.make ~name:"table hash, rebuilt (n=4096)"
      (Staged.stage (fun () ->
           Table.hash
             (Table.of_sorted_array_unchecked (Table.schema b13_table)
                (Table.row_array b13_table))));
    Test.make ~name:"table hash, cached (n=4096)"
      (Staged.stage (fun () -> Table.hash b13_table));
  ]

(* ------------------------------------------------------------------ *)
(* B14: the real transport — remote sessions through the chaos net     *)
(* ------------------------------------------------------------------ *)

(* One B14 run is a full client round-trip through the transport stack:
   envelope + frame encode, the in-process chaos network, real frame
   decode, the dedup window, the store commit and the response path —
   measured against the in-process [Session.submit_rebase] floor, and
   degraded by deterministic packet loss at the [net.drop] site (the
   retry/backoff sleeps run on the shim's manual clock, so a "slow"
   retry costs compute, not wall-clock sleeping).

   Batched = the add and its compensating remove in one commit (one
   round-trip); unbatched = two single-delta commits (two round-trips).
   Every variant is net-zero on the table, so run N costs the same as
   run 1. *)

let b14_store () : (Table.t, Table.t, Row_delta.t, Row_delta.t) Sync.Store.t =
  Sync.Store.of_packed ~name:"bench" ~snapshot_every:1024
    ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
    (Esm_core.Concrete.packed_of_lens ~vwb:false
       ~init:(Workload.employees ~seed:7 ~size:512)
       ~eq_state:Table.equal select_lens)

let b14_row =
  Row.of_list
    [
      Value.Int 888_888;
      Value.Str "b14";
      Value.Str "Engineering";
      Value.Int 61_000;
      Value.Str "b14@example.com";
    ]

let b14_remote_case ~label ~rate ~batched =
  let module T = Sync.Transport in
  let net = T.Chaos_net.create (Sync.Wire.serve (b14_store ())) in
  let clock = T.Chaos_net.clock net in
  let policy =
    {
      (Sync.Retry.default ~seed:9 ()) with
      Sync.Retry.max_attempts = 8;
      base_delay = 0.02;
      attempt_timeout = 0.5;
      deadline = 60.0;
    }
  in
  let s =
    match
      T.Remote_session.bind ~policy ~clock (T.Chaos_net.endpoint net)
        ~name:"b14" ~side:`B
    with
    | Ok s -> s
    | Error e -> failwith (Esm_core.Error.message e)
  in
  let chaos = Esm_core.Chaos.make ~rate ~seed:9 () in
  let submit ds =
    match T.Remote_session.submit s (`Batch ds) with
    | Ok _ -> ()
    | Error _ ->
        (* settle the in-doubt id so the next run starts clean *)
        T.Chaos_net.drain net;
        ignore (Esm_core.Chaos.protected (fun () -> T.Remote_session.resolve s))
  in
  Test.make ~name:label
    (Staged.stage (fun () ->
         Esm_core.Chaos.with_chaos chaos (fun () ->
             Esm_core.Chaos.at_sites [ "net.drop" ] (fun () ->
                 if batched then
                   submit [ Row_delta.Add b14_row; Row_delta.Remove b14_row ]
                 else begin
                   submit [ Row_delta.Add b14_row ];
                   submit [ Row_delta.Remove b14_row ]
                 end))))

let b14_converge_case ~label ~rate =
  let module T = Sync.Transport in
  let net = T.Chaos_net.create (Sync.Wire.serve (b14_store ())) in
  let clock = T.Chaos_net.clock net in
  let policy =
    {
      (Sync.Retry.default ~seed:9 ()) with
      Sync.Retry.max_attempts = 8;
      base_delay = 0.02;
      attempt_timeout = 0.5;
      deadline = 60.0;
    }
  in
  let bind name =
    match
      T.Remote_session.bind ~policy ~clock (T.Chaos_net.endpoint net) ~name
        ~side:`B
    with
    | Ok s -> s
    | Error e -> failwith (Esm_core.Error.message e)
  in
  let writer = bind "b14w" and reader = bind "b14r" in
  let chaos = Esm_core.Chaos.make ~rate ~seed:9 () in
  Test.make ~name:label
    (Staged.stage (fun () ->
         Esm_core.Chaos.with_chaos chaos (fun () ->
             Esm_core.Chaos.at_sites [ "net.drop" ] (fun () ->
                 (match
                    T.Remote_session.submit writer
                      (`Batch
                        [ Row_delta.Add b14_row; Row_delta.Remove b14_row ])
                  with
                 | Ok _ -> ()
                 | Error _ ->
                     T.Chaos_net.drain net;
                     ignore
                       (Esm_core.Chaos.protected (fun () ->
                            T.Remote_session.resolve writer)));
                 ignore (T.Remote_session.pull reader)))))

let b14_local =
  let store = b14_store () in
  Sync.Session.bind store ~name:"b14-local" ~side:`B

let b14_tests =
  [
    Test.make ~name:"in-process submit_rebase floor (n=512)"
      (Staged.stage (fun () ->
           ignore
             (Sync.Session.submit_rebase b14_local
                (Sync.Store.Batch_b
                   [ Row_delta.Add b14_row; Row_delta.Remove b14_row ]))));
    b14_remote_case ~label:"remote submit, batched, drop=0%  (n=512)"
      ~rate:0.0 ~batched:true;
    b14_remote_case ~label:"remote submit, unbatched, drop=0%  (n=512)"
      ~rate:0.0 ~batched:false;
    b14_remote_case ~label:"remote submit, batched, drop=2%  (n=512)"
      ~rate:0.02 ~batched:true;
    b14_remote_case ~label:"remote submit, unbatched, drop=2%  (n=512)"
      ~rate:0.02 ~batched:false;
    b14_remote_case ~label:"remote submit, batched, drop=10% (n=512)"
      ~rate:0.10 ~batched:true;
    b14_remote_case ~label:"remote submit, unbatched, drop=10% (n=512)"
      ~rate:0.10 ~batched:false;
    b14_converge_case ~label:"commit + remote pull converge, drop=0%  (n=512)"
      ~rate:0.0;
    b14_converge_case ~label:"commit + remote pull converge, drop=10% (n=512)"
      ~rate:0.10;
  ]

(* ------------------------------------------------------------------ *)
(* B15: the ESMQL front-end — compiled plans vs hand-built dlenses     *)
(* ------------------------------------------------------------------ *)

(* What the query front-end costs: (a) a gate-passed compiled view must
   put_delta at parity with the same pipeline hand-built from the dlens
   combinators — compilation through the surface syntax adds no per-put
   tax; (b) the runtime-validated fallback pays the full get/put oracle
   plus the PutGet re-check, which is the price of an unjustified level
   request; (c) parse + schema check + law inference + gate is a
   compile-time cost, paid once per script, not per put. *)

let b15_table = Workload.employees ~seed:42 ~size:512

let b15_bases : Esm_ql.Check.base list =
  [
    {
      Esm_ql.Check.bname = "employees";
      bschema = Workload.employees_schema;
      bkey = [ "id" ];
      binit = b15_table;
    };
  ]

let b15_source =
  "view eng = employees | where dept = \"Engineering\" | select id, name, \
   dept;"

let b15_compile ~mode src : Esm_ql.Check.cview =
  match Esm_ql.Parser.parse src with
  | Error e -> failwith (Esm_core.Error.message e)
  | Ok script -> (
      match Esm_ql.Check.compile ~mode ~bases:b15_bases script with
      | Ok c -> List.hd c.Esm_ql.Check.views
      | Error e -> failwith (Esm_core.Error.message e))

(* the honest request: raw delta path *)
let b15_compiled = b15_compile ~mode:Esm_ql.Ast.Strict b15_source

(* the downgraded request: runtime-validated path *)
let b15_validated =
  b15_compile ~mode:Esm_ql.Ast.Fallback
    ("expect level = commuting;\n" ^ b15_source)

(* the same pipeline, hand-built from the combinators *)
let b15_hand : Rlens.dlens =
  Rlens.dcompose
    (Rlens.dselect ~key:[ "id" ] Pred.(col "dept" = str "Engineering"))
    (Rlens.dproject
       ~keep:[ "id"; "name"; "dept" ]
       ~key:[ "id" ] Workload.employees_schema)

let b15_row =
  Row.of_list [ Value.Int 777_777; Value.Str "b15"; Value.Str "Engineering" ]

(* net-zero on the view, so run N costs the same as run 1 *)
let b15_burst = [ Row_delta.Add b15_row; Row_delta.Remove b15_row ]

let b15_tests =
  [
    Test.make ~name:"hand-built dlens put_delta (n=512)"
      (Staged.stage (fun () ->
           ignore (Rlens.put_delta b15_hand b15_table b15_burst)));
    Test.make ~name:"compiled query put_delta (n=512)"
      (Staged.stage (fun () ->
           ignore
             (Rlens.put_delta b15_compiled.Esm_ql.Check.dlens b15_table
                b15_burst)));
    Test.make ~name:"validated fallback put_delta (n=512)"
      (Staged.stage (fun () ->
           ignore
             (Rlens.put_delta b15_validated.Esm_ql.Check.dlens b15_table
                b15_burst)));
    Test.make ~name:"parse + compile + gate, strict pass"
      (Staged.stage (fun () ->
           ignore (b15_compile ~mode:Esm_ql.Ast.Strict b15_source)));
    Test.make ~name:"parse + compile + gate, fallback downgrade"
      (Staged.stage (fun () ->
           ignore
             (b15_compile ~mode:Esm_ql.Ast.Fallback
                ("expect level = commuting;\n" ^ b15_source))));
  ]

(* ------------------------------------------------------------------ *)
(* B16: sharded gossip catch-up + post-compaction reopen recovery      *)
(* ------------------------------------------------------------------ *)

let b16_shards = 2

let b16_shard_of_row (row : Row.t) : int =
  match Row.to_list row with
  | Value.Int id :: _ -> ((id mod b16_shards) + b16_shards) mod b16_shards
  | _ -> 0

(* a 2-shard group over the n=512 workload, partitioned by id parity *)
let b16_group () : Sync.Shard.Relational.rt =
  let init = Workload.employees ~seed:7 ~size:512 in
  let buckets = Array.make b16_shards [] in
  List.iter
    (fun r ->
      let i = b16_shard_of_row r in
      buckets.(i) <- r :: buckets.(i))
    (Table.rows init);
  let stores =
    Array.init b16_shards (fun i ->
        Sync.Store.of_packed
          ~name:(Printf.sprintf "bench-%d" i)
          ~snapshot_every:64 ~apply_da:Row_delta.apply_all
          ~apply_db:Row_delta.apply_all
          (Esm_core.Concrete.packed_of_lens ~vwb:false
             ~init:
               (Table.of_rows Workload.employees_schema (List.rev buckets.(i)))
             ~eq_state:Table.equal select_lens))
  in
  Sync.Shard.make ~stores
    ~route:
      (Sync.Shard.Relational.route_op ~shards:b16_shards
         ~shard_of_row:b16_shard_of_row)
    ()

(* 64 commits, every id even, so the whole suffix lands at shard 0 and
   shard 1's replica is 64 entries behind *)
let b16_fill g =
  for i = 1 to 64 do
    List.iter
      (fun (_, r) ->
        match r with
        | Ok _ -> ()
        | Error e -> failwith (Esm_core.Error.message e))
      (Sync.Shard.submit g ~session:"bench"
         (Sync.Store.Batch_a
            [
              Row_delta.Add
                (Row.of_list
                   [
                     Value.Int (200_000 + (2 * i));
                     Value.Str ("g" ^ string_of_int i);
                     Value.Str "Engineering";
                     Value.Int 60_000;
                     Value.Str "gossip@example.com";
                   ]);
            ]))
  done

let b16_compact_shard0 g =
  match Sync.Store.compact (Sync.Shard.store g 0) with
  | Ok _ -> ()
  | Error e -> failwith (Esm_core.Error.message e)

(* already quiescent: the steady-state round ships nothing *)
let b16_steady =
  let g = b16_group () in
  b16_fill g;
  ignore (Sync.Shard.gossip_until_quiescent g);
  g

let b16_gossip_tests =
  [
    Test.make ~name:"setup floor: build + 64 commits, no gossip"
      (Staged.stage (fun () ->
           let g = b16_group () in
           b16_fill g));
    Test.make ~name:"gossip catch-up: 64-entry suffix (2 shards)"
      (Staged.stage (fun () ->
           let g = b16_group () in
           b16_fill g;
           Sync.Shard.gossip_round g));
    Test.make ~name:"gossip catch-up: resync from compacted peer"
      (Staged.stage (fun () ->
           let g = b16_group () in
           b16_fill g;
           b16_compact_shard0 g;
           Sync.Shard.gossip_round g));
    Test.make ~name:"gossip steady-state round (in sync)"
      (Staged.stage (fun () -> Sync.Shard.gossip_round b16_steady));
  ]

(* post-compaction reopen vs the unbounded log: the same 127-commit
   history at n=512 (cadence 8); one dir compacted to its version-120
   snapshot before closing, so reopen validates and dedups 7 records
   instead of 127 while replaying the same 7-entry suffix *)
let b16_reopen_tests =
  List.map
    (fun (label, compacted) ->
      let dir = b11_dir ("b16-" ^ label) in
      let store =
        b11_store ~snapshot_every:8 ~size:512
          ~fsync:Sync.Durable_log.Fsync_never ~dir ()
      in
      for _ = 1 to 127 do
        b10_commit store b11_net_zero
      done;
      if compacted then (
        match Sync.Store.compact store with
        | Ok _ -> ()
        | Error e -> failwith (Esm_core.Error.message e));
      Sync.Store.close store;
      Test.make
        ~name:(Printf.sprintf "reopen 127 commits, %-9s log (n=512)" label)
        (Staged.stage (fun () ->
             match
               Sync.Store.reopen ~name:"bench" ~snapshot_every:8
                 ~apply_da:Row_delta.apply_all ~apply_db:Row_delta.apply_all
                 ~codec:b11_codec ~dir
                 (Esm_core.Concrete.packed_of_lens ~vwb:false
                    ~init:(Workload.employees ~seed:7 ~size:512)
                    ~eq_state:Table.equal select_lens)
             with
             | Ok store -> Sync.Store.close store
             | Error e -> failwith (Esm_core.Error.message e))))
    [ ("full", false); ("compacted", true) ]

let b16_tests = b16_gossip_tests @ b16_reopen_tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()

let measure_one test =
  let name = Test.Elt.name (List.hd (Test.elements test)) in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let est =
    Hashtbl.fold
      (fun _ v acc ->
        match Analyze.OLS.estimates v with Some (t :: _) -> t | _ -> acc)
      analyzed nan
  in
  (name, est)

(* Collected (experiment id, ns/run) pairs across all groups, for the
   JSON emitter. *)
let all_results : (string * float) list ref = ref []

(* "B4" + "select.put   n=4096" -> "B4/select.put n=4096" (padding
   collapsed so ids are stable across formatting tweaks). *)
let experiment_id group name =
  group ^ "/"
  ^ String.concat " "
      (List.filter (fun s -> s <> "") (String.split_on_char ' ' name))

let run_group ~(id : string) ~(header : string) ~(expectation : string) tests =
  Fmt.pr "@.== %s: %s ==@." id header;
  Fmt.pr "   expectation: %s@." expectation;
  let results = List.map measure_one tests in
  let baseline = match results with (_, t) :: _ -> t | [] -> nan in
  List.iter
    (fun (name, ns) ->
      Fmt.pr "   %-42s %12.1f ns/run   (x%.2f)@." name ns (ns /. baseline);
      all_results := (experiment_id id name, ns) :: !all_results)
    results

(* ------------------------------------------------------------------ *)
(* JSON emission (--json): BENCH_PR2.json with the pre-PR baseline      *)
(* ------------------------------------------------------------------ *)

(* ns/run measured at the parent commit of this PR (same machine and
   harness, before the indexed-storage/delta work), for the experiments
   that work touches.  Kept verbatim so the before/after ratio is
   recorded alongside every fresh run. *)
let pre_pr_baseline =
  [
    ("B4/select.get n=0064", 1701.1);
    ("B4/select.put n=0064", 9171.7);
    ("B4/project.put n=0064", 16234.3);
    ("B4/select.get n=0512", 14046.7);
    ("B4/select.put n=0512", 76360.2);
    ("B4/project.put n=0512", 159368.1);
    ("B4/select.get n=4096", 113399.0);
    ("B4/select.put n=4096", 765074.5);
    ("B4/project.put n=4096", 1684741.5);
    ("B7/consistency check n=008", 7506.5);
    ("B7/fwd after 1 edit n=008", 8392.9);
    ("B7/diff 1-edit models n=008", 2418.7);
    ("B7/consistency check n=032", 84179.2);
    ("B7/fwd after 1 edit n=032", 88820.9);
    ("B7/diff 1-edit models n=032", 9207.0);
    ("B7/consistency check n=128", 1234581.5);
    ("B7/fwd after 1 edit n=128", 1377884.0);
    ("B7/diff 1-edit models n=128", 38983.9);
    ("B8/compiled view lens put (n=512)", 133687.3);
    ("B8/handwritten view lens put (n=512)", 129060.2);
  ]

(* ns/run measured at the parent commit of PR 7 (same machine and
   harness, before the incremental recomputation layer) for the write
   paths that work touches — the ≤10% overhead budget of EXPERIMENTS.md
   B13 is judged against these.  The B13 read-path experiments have no
   pre-PR equivalent: the caches did not exist. *)
let pre_pr7_baseline =
  [
    ("B4/select.get n=0064", 2034.1);
    ("B4/select.put n=0064", 5223.8);
    ("B4/select.put_delta n=0064", 898.4);
    ("B4/project.put n=0064", 12249.8);
    ("B4/project.put_delta n=0064", 1065.1);
    ("B4/select.get n=0512", 12544.5);
    ("B4/select.put n=0512", 41377.6);
    ("B4/select.put_delta n=0512", 3754.4);
    ("B4/project.put n=0512", 118858.4);
    ("B4/project.put_delta n=0512", 18191.4);
    ("B4/select.get n=4096", 90677.7);
    ("B4/select.put n=4096", 253475.5);
    ("B4/select.put_delta n=4096", 27115.9);
    ("B4/project.put n=4096", 1278051.1);
    ("B4/project.put_delta n=4096", 30971.5);
    ("B8/compiled view lens put (n=512)", 63602.4);
    ("B8/handwritten view lens put (n=512)", 68521.3);
    ("B9/raw set_b (full put, n=512)", 40406.3);
    ("B9/atomic set_b, commit path", 41983.6);
    ("B10/batched commit (64-delta burst, n=4096)", 716021.3);
    ("B10/one-at-a-time (64 commits, n=4096)", 23121548.3);
    ("B10/replay recovery (8 bursts, n=4096)", 3097056.4);
    ("B11/commit fsync=never (n=4096)", 807757.9);
    ("B11/commit fsync=every-64 (n=4096)", 812821.3);
    ("B11/commit fsync=every-8 (n=4096)", 1763272.2);
    ("B11/commit fsync=always (n=4096)", 1137925.0);
    ("B12/plan command: exec raw (16 view sets, n=512)", 346205.7);
    ("B12/plan command: exec at opaque floor", 376891.0);
    ("B12/plan command: exec at inferred level", 36982.7);
  ]

(* Pre-PR8 there was no transport: the only way to submit was the
   in-process session path.  B14's remote round-trips are judged against
   these committed PR7 numbers for the same commit machinery. *)
(* Pre-PR9 there was no query front-end: the only way to run these
   pipelines was to hand-build the dlens (B4's put_delta paths, B8's
   compiled view lens).  B15's parity and overhead claims are judged
   against these committed PR8 numbers for the same machinery. *)
let pre_pr9_baseline =
  [
    ("B4/select.put_delta n=0512", 3889.3);
    ("B4/project.put_delta n=0512", 7544.6);
    ("B8/compiled view lens put (n=512)", 79447.1);
    ("B8/handwritten view lens put (n=512)", 87032.0);
  ]

let pre_pr8_baseline =
  [
    ("B10/batched commit (64-delta burst, n=4096)", 702939.6);
    ("B10/one-at-a-time (64 commits, n=4096)", 21333624.6);
    ("B13/session poll, unchanged store", 747.4);
    ("B13/store view read, memoized hit (n=4096)", 740.7);
  ]

(* Pre-PR10 there was no sharding and no compaction: a lagging replica
   could only be rebuilt by the full replay/reopen machinery, and the
   durable log grew without bound.  B16's gossip catch-up and bounded
   reopen are judged against these committed PR9 numbers for that
   machinery. *)
let pre_pr10_baseline =
  [
    ("B10/replay recovery (8 bursts, n=4096)", 3025665.8);
    ("B11/reopen 127 commits, snapshot_every=8 (n=512)", 3874763.6);
    ("B11/reopen 127 commits, snapshot_every=100000 (n=512)", 6253273.1);
  ]

let json_number ns =
  if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns

let emit_json ~pr ~baseline path =
  let buf = Buffer.create 4096 in
  let obj entries =
    String.concat ",\n"
      (List.map
         (fun (k, ns) -> Printf.sprintf "    %S: %s" k (json_number ns))
         entries)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": %d,\n" pr);
  Buffer.add_string buf
    "  \"unit\": \"ns/run\",\n  \"keys\": \"experiment id (group/test)\",\n";
  Buffer.add_string buf "  \"baseline_pre_pr\": {\n";
  Buffer.add_string buf (obj baseline);
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf "  \"current\": {\n";
  Buffer.add_string buf (obj (List.rev !all_results));
  Buffer.add_string buf "\n  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %s@." path

let () =
  let json = Array.exists (String.equal "--json") Sys.argv in
  Fmt.pr "entangled-state-monads benchmark harness@.";
  Fmt.pr
    "(paper has no empirical evaluation; experiment ids follow EXPERIMENTS.md)@.";
  run_group ~id:"B1" ~header:"primitive sync step across instances"
    ~expectation:
      "all instance families within a small constant factor; effectful pays \
       for the trace"
    b1_tests;
  run_group ~id:"B2" ~header:"translation overhead (Lemmas 1-3)"
    ~expectation:
      "derived put ~ set + get; double translation adds no further cost"
    b2_tests;
  run_group ~id:"B3" ~header:"composition chain scaling"
    ~expectation:"cost grows linearly in chain length n" b3_tests;
  run_group ~id:"B4" ~header:"relational lens workloads"
    ~expectation:
      "get linear; put linear-ish on the shared sorted arrays (compiled \
       predicates, memoized key index); put_delta flat in table size"
    b4_tests;
  run_group ~id:"B5" ~header:"representation ablations"
    ~expectation:
      "shallow embedding faster than interpreted free-monad term; record and \
       functor reps comparable"
    b5_tests;
  run_group ~id:"B6" ~header:"witness-structure wrapper overhead"
    ~expectation:
      "journal/undo add a small constant (allocation); effectful adds the \
       trace machinery"
    b6_tests;
  run_group ~id:"B7" ~header:"MDE synchronisation vs model size"
    ~expectation:
      "consistency and restoration near-linear (indexed partner maps); \
       fwd_delta ~ diff cost; diff near-linear (indexed)"
    b7_tests;
  run_group ~id:"B8" ~header:"surface-language machinery"
    ~expectation:
      "compiled view lens ~ handwritten; optimizer turns 32 redundant sets \
       into 1"
    b8_tests;
  run_group ~id:"B9" ~header:"transactional (atomic) execution overhead"
    ~expectation:
      "commit path ~ raw full put (one exception frame); rollback path cheap \
       (fails before rebuilding the view)"
    b9_tests;
  run_group ~id:"B10" ~header:"sync engine: batched deltas + replay recovery"
    ~expectation:
      "the batched 64-edit burst is one view rebuild and one oplog record — \
       at least 5x over 64 one-at-a-time commits; replay recovery ~ 8 \
       batched commits"
    b10_tests;
  run_group ~id:"B12"
    ~header:"law inference unlocking the optimizer on a compiled plan"
    ~expectation:
      "at the pre-pedigree opaque floor the 16 redundant view publishes \
       all execute; at the inferred (overwriteable) level (SS) collapses \
       them to one put — an order of magnitude"
    b12_tests;
  run_group ~id:"B11" ~header:"durable log: fsync policy + reopen recovery"
    ~expectation:
      "batched fsync (every 64) within 3x of no fsync; per-commit fsync pays \
       the full device-flush latency; reopen cost tracks the replay suffix \
       length, so denser snapshot cadences reopen faster"
    b11_tests;
  run_group ~id:"B13"
    ~header:"incremental recomputation: memoized poll/view hot paths"
    ~expectation:
      "memoized store view reads, rlens view hits and unchanged-store polls \
       are near-zero-cost (>=50x under the uncached read at n=4096); a plan \
       cache hit dodges the parse-free recompile; the table hash is O(1) \
       once the accumulator is warm"
    b13_tests;
  run_group ~id:"B14"
    ~header:"real transport: remote sessions vs drop rate (chaos net)"
    ~expectation:
      "the remote round-trip costs a small constant over the in-process \
       floor on a clean net; packet loss degrades throughput smoothly \
       (retries with deterministic backoff, never corruption); one batched \
       round-trip beats two unbatched ones at every drop rate"
    b14_tests;
  run_group ~id:"B15"
    ~header:"ESMQL front-end: compiled plans vs hand-built dlenses"
    ~expectation:
      "gate-passed compiled put_delta at parity with the hand-built \
       combinator pipeline; the validated fallback pays the full get/put \
       oracle (orders over the delta path); parse+compile+gate is a \
       once-per-script cost"
    b15_tests;
  run_group ~id:"B16"
    ~header:"sharded gossip catch-up + post-compaction reopen recovery"
    ~expectation:
      "one anti-entropy round ships the whole 64-entry suffix for a small \
       constant over the setup floor; a compacted peer answers with a typed \
       resync (snapshot + empty suffix) for about the same cost; the \
       steady-state round is near-free; reopening a compacted log beats the \
       full 127-record scan"
    b16_tests;
  if json then (
    emit_json ~pr:2 ~baseline:pre_pr_baseline "BENCH_PR2.json";
    emit_json ~pr:7 ~baseline:pre_pr7_baseline "BENCH_PR7.json";
    emit_json ~pr:8 ~baseline:pre_pr8_baseline "BENCH_PR8.json";
    emit_json ~pr:9 ~baseline:pre_pr9_baseline "BENCH_PR9.json";
    emit_json ~pr:10 ~baseline:pre_pr10_baseline "BENCH_PR10.json");
  Fmt.pr "@.done.@."
