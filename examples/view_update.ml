(* View update over a relational store.

   The classic database scenario the paper's introduction motivates: a
   stored employees table (side A) kept in sync with a selected+projected
   view (side B) through a relational lens lifted to an entangled state
   monad.  Edits made to the view propagate back into the store; edits to
   the store refresh the view.  Run with:
     dune exec examples/view_update.exe  *)

open Esm_relational

let schema = Workload.employees_schema
let eng = Pred.(col "dept" = str "Engineering")

(* View definition: SELECT id, name, dept FROM employees
                    WHERE dept = 'Engineering'  *)
let view_lens =
  Esm_lens.Lens.(
    Rlens.select eng // Rlens.project ~keep:[ "id"; "name"; "dept" ] ~key:[ "id" ] schema)

module Bx = Esm_core.Of_lens.Make (struct
  type s = Table.t
  type v = Table.t

  let lens = view_lens
  let equal_s = Table.equal
end)

let view_schema = Schema.project schema [ "id"; "name"; "dept" ]

let () =
  let store =
    Table.of_lists schema
      [
        [ Value.Int 1; Value.Str "ada"; Value.Str "Engineering"; Value.Int 52_000; Value.Str "ada@corp" ];
        [ Value.Int 2; Value.Str "brian"; Value.Str "Sales"; Value.Int 47_000; Value.Str "brian@corp" ];
        [ Value.Int 3; Value.Str "carol"; Value.Str "Engineering"; Value.Int 61_000; Value.Str "carol@corp" ];
        [ Value.Int 4; Value.Str "dan"; Value.Str "Support"; Value.Int 39_000; Value.Str "dan@corp" ];
      ]
  in
  Fmt.pr "== stored table (side A) ==@.%s@.@." (Table.to_string store);

  let open Bx.Syntax in
  let session =
    let* v = Bx.get_b in
    Fmt.pr "== view (side B): engineering id/name/dept ==@.%s@.@."
      (Table.to_string v);

    (* Edit the view: rename ada, hire a new engineer with id 9. *)
    let v' =
      Table.of_lists view_schema
        [
          [ Value.Int 1; Value.Str "ada lovelace"; Value.Str "Engineering" ];
          [ Value.Int 3; Value.Str "carol"; Value.Str "Engineering" ];
          [ Value.Int 9; Value.Str "grace"; Value.Str "Engineering" ];
        ]
    in
    let* () = Bx.set_b v' in
    let* store' = Bx.get_a in
    Fmt.pr "== after set_b (view edit propagated back) ==@.%s@.@."
      (Table.to_string store');
    Fmt.pr "note: ada kept salary+email; grace got defaults; sales/support untouched@.@.";

    (* Edit the store: fire the sales department. *)
    let* current = Bx.get_a in
    let* () =
      Bx.set_a (Algebra.select Pred.(not_ (col "dept" = str "Sales")) current)
    in
    let* v'' = Bx.get_b in
    Fmt.pr "== after set_a (store edit), view refreshed ==@.%s@."
      (Table.to_string v'');
    Bx.return ()
  in
  let (), _final = Bx.run session store in

  (* The set-bx laws hold on this database instance; spot-check (GS) and
     (SG) concretely. *)
  let open Bx.Infix in
  let (), s1 = Bx.run (Bx.get_b >>= Bx.set_b) store in
  Fmt.pr "@.law check (GS): putting back the unmodified view is a no-op: %b@."
    (Table.equal s1 store);
  let v = Algebra.project [ "id"; "name"; "dept" ] (Algebra.select eng store) in
  let got, _ = Bx.run (Bx.set_b v >> Bx.get_b) store in
  Fmt.pr "law check (SG): reading right after writing returns the write: %b@."
    (Table.equal got v);

  (* Incremental propagation: the same view pipeline compiled to a
     delta-capable lens.  A one-row view edit travels back as a one-row
     source delta instead of a whole replacement table. *)
  let dlens =
    Query.dlens_of_string ~schema ~key:[ "id" ]
      {|employees | where dept = "Engineering" | select id, name, dept|}
  in
  let hire =
    Row.of_list [ Value.Int 10; Value.Str "edsger"; Value.Str "Engineering" ]
  in
  let store_inc =
    Rlens.put_delta dlens store [ Row_delta.Add hire ]
  in
  Fmt.pr "@.== delta path: hiring id 10 through put_delta ==@.%s@."
    (Table.to_string store_inc);
  let view_now = Esm_lens.Lens.get dlens.Rlens.lens store in
  let store_full =
    Esm_lens.Lens.put dlens.Rlens.lens store (Table.insert view_now hire)
  in
  Fmt.pr "delta result agrees with the full put: %b@."
    (Table.equal store_inc store_full);

  (* DML against the view, pushed back incrementally. *)
  let raise_ada =
    Dml.Update (Pred.(col "id" = int 1), [ ("name", Pred.Lit (Value.Str "countess ada")) ])
  in
  let store_dml = Dml.through_delta dlens raise_ada store_inc in
  Fmt.pr "after delta-propagated DML update on the view:@.%s@."
    (Table.to_string store_dml)
