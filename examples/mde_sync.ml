(* Model-driven engineering synchronisation — the paper's motivating
   scenario: "In model driven development, such sources are usually
   models; for example, UML models of a system to be developed."

   A UML-ish class model and a persistence schema are related by a
   QVT-R-lite correspondence spec (Esm_modelbx.Mbx).  The spec induces an
   algebraic bx (Stevens style), which Lemma 5 turns into an entangled
   state monad over consistent model pairs: editing either model through
   the monad silently repairs the other, while each side's private data
   (docs on classes, storage engines on tables) survives.  Run with:
     dune exec examples/mde_sync.exe  *)

open Esm_modelbx

let class_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Class";
        attributes =
          [ ("name", Metamodel.Tstr); ("abstract", Metamodel.Tbool); ("doc", Metamodel.Tstr) ];
      };
    ]

let table_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Table";
        attributes =
          [ ("name", Metamodel.Tstr); ("persistent", Metamodel.Tbool); ("engine", Metamodel.Tstr) ];
      };
    ]

let spec =
  Mbx.v ~name:"class<->table" ~left_mm:class_mm ~right_mm:table_mm
    [
      {
        Mbx.left_class = "Class";
        right_class = "Table";
        key = [ ("name", "name") ];
        synced = [ ("abstract", "persistent") ];
      };
    ]

(* Lemma 5: entangled state monad over consistent (classes, tables)
   pairs. *)
module Bx = Esm_core.Of_algebraic.Make (struct
  type ta = Model.t
  type tb = Model.t

  let bx = Mbx.to_algbx spec
  let equal_a = Model.equal
  let equal_b = Model.equal
end)

let () =
  let classes =
    Model.of_objects
      [
        Model.obj ~id:1 ~cls:"Class"
          [ ("name", Model.Vstr "Order"); ("abstract", Model.Vbool false); ("doc", Model.Vstr "a customer order") ];
        Model.obj ~id:2 ~cls:"Class"
          [ ("name", Model.Vstr "Item"); ("abstract", Model.Vbool true); ("doc", Model.Vstr "line item") ];
      ]
  in
  let tables = Mbx.fwd spec classes Model.empty in
  Fmt.pr "== class model (side A) ==@.%s@." (Model.to_string classes);
  Fmt.pr "== derived tables (side B) ==@.%s@." (Model.to_string tables);
  Fmt.pr "consistent: %b | right conforms to its metamodel: %b@.@."
    (Mbx.consistent spec classes tables)
    (Metamodel.conforms table_mm tables);

  let open Bx.Syntax in
  let session =
    (* The DBA tunes a table engine (private to the right model). *)
    let* tables = Bx.get_b in
    let order =
      List.find
        (fun o -> Model.attr o "name" = Some (Model.Vstr "Order"))
        (Model.objects tables)
    in
    let* () =
      Bx.set_b
        (Model.update tables
           (Model.set_attr order "engine" (Model.Vstr "innodb")))
    in

    (* The developer adds a class and deletes another — one set_a. *)
    let* classes = Bx.get_a in
    let classes' =
      Model.add
        (Model.remove classes 2)
        (Model.obj ~id:3 ~cls:"Class"
           [ ("name", Model.Vstr "Invoice"); ("abstract", Model.Vbool false); ("doc", Model.Vstr "billing") ])
    in
    let* () = Bx.set_a classes' in
    let* tables' = Bx.get_b in
    Fmt.pr "== after DBA engine tweak + developer class edit ==@.%s@."
      (Model.to_string tables');
    Fmt.pr
      "note: Item table deleted, Invoice table created (defaults), Order \
       kept its innodb engine@.@.";

    (* Schema-first: DBA flips persistence on Invoice; the class model
       follows. *)
    let* tables = Bx.get_b in
    let invoice =
      List.find
        (fun o -> Model.attr o "name" = Some (Model.Vstr "Invoice"))
        (Model.objects tables)
    in
    let* () =
      Bx.set_b
        (Model.update tables
           (Model.set_attr invoice "persistent" (Model.Vbool true)))
    in
    let* classes'' = Bx.get_a in
    Fmt.pr "== class model after the schema-first edit ==@.%s@."
      (Model.to_string classes'');
    Fmt.pr "note: Invoice became abstract=true; Order kept its doc string@.";
    Bx.return ()
  in
  let (), (final_classes, final_tables) = Bx.run session (classes, tables) in
  Fmt.pr "@.final pair consistent: %b@."
    (Mbx.consistent spec final_classes final_tables);

  (* The edit scripts between the initial and final models, via the
     model-diff substrate. *)
  Fmt.pr "@.edit script on the class model:@.";
  List.iter
    (fun e -> Fmt.pr "  %a@." Diff.pp_edit e)
    (Diff.diff classes final_classes);

  (* Incremental propagation: one more developer edit travels to the
     tables via fwd_delta — the diff's single Set_attr is mirrored onto
     the partner table through the indexed partner map, instead of
     re-restoring the whole right model. *)
  let order =
    List.find
      (fun o -> Model.attr o "name" = Some (Model.Vstr "Order"))
      (Model.objects final_classes)
  in
  let classes_edited =
    Model.update final_classes
      (Model.set_attr order "abstract" (Model.Vbool true))
  in
  let tables_inc =
    Mbx.fwd_delta spec ~old_left:final_classes classes_edited final_tables
  in
  Fmt.pr "@.== tables after fwd_delta of one Set_attr ==@.%s@."
    (Model.to_string tables_inc);
  Fmt.pr "fwd_delta agrees with the full fwd: %b@."
    (Model.equal tables_inc (Mbx.fwd spec classes_edited final_tables))
